package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder builds a per-package lock-acquisition graph and flags cyclic
// acquisition order. PRs 4–6 spread mutexes across the coordinator, the
// sharded session registry, the per-session queues, and the scheduler; a
// deadlock needs only two code paths that nest two of those locks in opposite
// orders, and no test reliably provokes one. The analyzer tracks which lock
// classes are held at every statement (including TryLock-guarded branches,
// deferred unlocks, and lock methods bound as values), records an edge A→B
// whenever B is acquired — directly or via a same-package call — while A is
// held, and reports every edge that participates in a cycle.
//
// A lock class is the *declaration* of the mutex: a struct field
// (`regShard.mu` is one class across all sixteen shards), a package-level
// var, or a local var. Two instances of the same class nested inside each
// other (shard-vs-shard) are invisible to this analysis and must be policed
// by convention; distinct classes are exactly what it sees.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "cyclic or inconsistent mutex acquisition order within a package",
	Run:  runLockOrder,
}

// lockEdge is one observed nesting: to was acquired while from was held.
type lockEdge struct {
	from, to types.Object
	pos      token.Pos
}

// lockOrder is the per-package analysis state shared by both passes.
type lockOrder struct {
	pass *Pass
	// names renders a lock class for diagnostics ("Server.clusterMu"),
	// fixed at first sight.
	names map[types.Object]string
	// acquires is the per-function transitive may-acquire set.
	acquires map[*types.Func]map[types.Object]bool
	// calls lists each function's same-package callees.
	calls map[*types.Func][]*types.Func
	// decls resolves a package function to its syntax.
	decls map[*types.Func]*ast.FuncDecl
	// edges holds the first occurrence of every distinct nesting.
	edges map[[2]types.Object]*lockEdge
}

// lockMethods are the sync.Mutex/RWMutex methods that acquire, and
// release, split by effect.
var (
	lockAcquire = map[string]bool{"Lock": true, "RLock": true}
	lockTry     = map[string]bool{"TryLock": true, "TryRLock": true}
	lockRelease = map[string]bool{"Unlock": true, "RUnlock": true}
)

func runLockOrder(pass *Pass) {
	lo := &lockOrder{
		pass:     pass,
		names:    make(map[types.Object]string),
		acquires: make(map[*types.Func]map[types.Object]bool),
		calls:    make(map[*types.Func][]*types.Func),
		decls:    make(map[*types.Func]*ast.FuncDecl),
		edges:    make(map[[2]types.Object]*lockEdge),
	}
	// Pass 1: direct acquire sets and the same-package call graph.
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			lo.decls[fn] = fd
			lo.collectDirect(fn, fd)
		}
	}
	lo.closeAcquires()
	// Pass 2: held-set tracking and edge recording.
	fns := make([]*types.Func, 0, len(lo.decls))
	for fn := range lo.decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return lo.decls[fns[i]].Pos() < lo.decls[fns[j]].Pos() })
	for _, fn := range fns {
		w := &lockWalker{lo: lo, tryVars: map[types.Object]types.Object{}, methodVals: map[types.Object]boundLockMethod{}}
		w.walkStmt(lo.decls[fn].Body)
	}
	lo.reportCycles()
}

// mutexMethodCall decodes call as a sync.Mutex/RWMutex method call and
// returns the receiver expression and method name.
func mutexMethodCall(pass *Pass, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn := selectedFunc(pass, sel)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	name := fn.Name()
	if !lockAcquire[name] && !lockTry[name] && !lockRelease[name] {
		return nil, "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil, "", false
	}
	if n := namedRecv(sig.Recv().Type()); n == nil || (n.Obj().Name() != "Mutex" && n.Obj().Name() != "RWMutex") {
		return nil, "", false
	}
	return sel.X, name, true
}

// lockClassOf resolves the receiver of a lock call to its class object: the
// mutex field or var declaration, or — for a mutex reached through embedding
// (`t.Lock()` on a struct embedding sync.Mutex) — the embedding named type.
func (lo *lockOrder) lockClassOf(expr ast.Expr) types.Object {
	expr = ast.Unparen(expr)
	var obj types.Object
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		obj = lo.pass.Info.Uses[e.Sel]
	case *ast.Ident:
		obj = lo.pass.Info.Uses[e]
		if obj == nil {
			obj = lo.pass.Info.Defs[e]
		}
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	// Embedded mutex: the receiver var's type is a named struct, not the
	// mutex itself; the class is that type, shared across instances.
	if n := namedRecv(v.Type()); n != nil && n.Obj().Pkg() != nil && !(n.Obj().Pkg().Path() == "sync" && (n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")) {
		lo.nameClass(n.Obj(), expr)
		return n.Obj()
	}
	lo.nameClass(v, expr)
	return v
}

// nameClass fixes the diagnostic name of a class at first sight, qualifying
// field selectors with the receiver's type ("Server.clusterMu").
func (lo *lockOrder) nameClass(obj types.Object, expr ast.Expr) {
	if _, done := lo.names[obj]; done {
		return
	}
	name := obj.Name()
	if sel, ok := expr.(*ast.SelectorExpr); ok {
		if t := lo.pass.Info.TypeOf(sel.X); t != nil {
			if n := namedRecv(t); n != nil {
				name = n.Obj().Name() + "." + sel.Sel.Name
			}
		}
	} else if tn, ok := obj.(*types.TypeName); ok {
		name = tn.Name() + " (embedded mutex)"
	}
	lo.names[obj] = name
}

// calleeFunc resolves a call to a function declared in this package.
func (lo *lockOrder) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := lo.pass.Info.Uses[id].(*types.Func)
	if fn == nil || fn.Pkg() != lo.pass.Pkg {
		return nil
	}
	return fn
}

// collectDirect fills fn's direct acquire set and callee list.
func (lo *lockOrder) collectDirect(fn *types.Func, fd *ast.FuncDecl) {
	acq := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, method, isMutex := mutexMethodCall(lo.pass, call); isMutex {
			if lockAcquire[method] || lockTry[method] {
				if c := lo.lockClassOf(recv); c != nil {
					acq[c] = true
				}
			}
			return true
		}
		if callee := lo.calleeFunc(call); callee != nil {
			lo.calls[fn] = append(lo.calls[fn], callee)
		}
		return true
	})
	lo.acquires[fn] = acq
}

// closeAcquires propagates acquire sets over the package call graph to a
// fixpoint, so a call made under a lock charges every lock the callee can
// transitively take.
func (lo *lockOrder) closeAcquires() {
	for changed := true; changed; {
		changed = false
		for fn, callees := range lo.calls {
			acq := lo.acquires[fn]
			for _, callee := range callees {
				for c := range lo.acquires[callee] {
					if !acq[c] {
						acq[c] = true
						changed = true
					}
				}
			}
		}
	}
}

// recordEdges notes that class was acquired at pos with held on the stack.
func (lo *lockOrder) recordEdges(held []types.Object, class types.Object, pos token.Pos) {
	for _, h := range held {
		if h == class {
			continue
		}
		key := [2]types.Object{h, class}
		if _, seen := lo.edges[key]; !seen {
			lo.edges[key] = &lockEdge{from: h, to: class, pos: pos}
		}
	}
}

// boundLockMethod is a lock method captured as a value (`l := mu.Lock`).
type boundLockMethod struct {
	class  types.Object
	method string
}

// lockWalker tracks the held-lock stack through one function body.
type lockWalker struct {
	lo   *lockOrder
	held []types.Object
	// tryVars maps `ok := mu.TryLock()` results to the guarded class.
	tryVars map[types.Object]types.Object
	// methodVals maps `l := mu.Lock` bindings to the bound method.
	methodVals map[types.Object]boundLockMethod
}

func (w *lockWalker) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, inner := range st.List {
			w.walkStmt(inner)
		}
	case *ast.ExprStmt:
		w.walkExpr(st.X, false)
	case *ast.DeferStmt:
		w.handleCall(st.Call, true)
	case *ast.GoStmt:
		// The goroutine runs concurrently: locks held at spawn are not held
		// inside it. Its body is analyzed with an empty stack.
		saved := w.held
		w.held = nil
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmt(lit.Body)
		}
		w.held = saved
	case *ast.AssignStmt:
		w.walkAssign(st)
	case *ast.IfStmt:
		w.walkIf(st)
	case *ast.ForStmt:
		w.walkStmt(st.Init)
		w.walkExprOpt(st.Cond)
		saved := w.snapshot()
		w.walkStmt(st.Body)
		w.walkStmt(st.Post)
		w.restore(saved)
	case *ast.RangeStmt:
		w.walkExprOpt(st.X)
		saved := w.snapshot()
		w.walkStmt(st.Body)
		w.restore(saved)
	case *ast.SwitchStmt:
		w.walkStmt(st.Init)
		w.walkExprOpt(st.Tag)
		w.walkClauses(st.Body)
	case *ast.TypeSwitchStmt:
		w.walkStmt(st.Init)
		w.walkClauses(st.Body)
	case *ast.SelectStmt:
		w.walkClauses(st.Body)
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.walkExpr(r, false)
		}
	case *ast.SendStmt:
		w.walkExpr(st.Chan, false)
		w.walkExpr(st.Value, false)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, false)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.walkExpr(st.X, false)
	}
}

// walkClauses walks each case body with a saved/restored held stack: clauses
// are alternatives, not a sequence.
func (w *lockWalker) walkClauses(body *ast.BlockStmt) {
	for _, clause := range body.List {
		saved := w.snapshot()
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.walkExpr(e, false)
			}
			for _, s := range c.Body {
				w.walkStmt(s)
			}
		case *ast.CommClause:
			w.walkStmt(c.Comm)
			for _, s := range c.Body {
				w.walkStmt(s)
			}
		}
		w.restore(saved)
	}
}

func (w *lockWalker) snapshot() []types.Object { return append([]types.Object(nil), w.held...) }
func (w *lockWalker) restore(saved []types.Object) {
	w.held = saved
}

// walkAssign records TryLock results and bound lock methods, then processes
// any calls on the right-hand side.
func (w *lockWalker) walkAssign(st *ast.AssignStmt) {
	// l := mu.Lock — the method value is an acquisition deferred to l().
	if len(st.Lhs) == 1 && len(st.Rhs) == 1 {
		if sel, ok := ast.Unparen(st.Rhs[0]).(*ast.SelectorExpr); ok {
			if fn := selectedFunc(w.lo.pass, sel); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
				(lockAcquire[fn.Name()] || lockTry[fn.Name()] || lockRelease[fn.Name()]) {
				if class := w.lo.lockClassOf(sel.X); class != nil {
					if id, ok := st.Lhs[0].(*ast.Ident); ok {
						if obj := w.objOf(id); obj != nil {
							w.methodVals[obj] = boundLockMethod{class: class, method: fn.Name()}
							return
						}
					}
				}
			}
		}
		// ok := mu.TryLock() — the class is held only where ok guards it.
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			if recv, method, isMutex := mutexMethodCall(w.lo.pass, call); isMutex && lockTry[method] {
				if class := w.lo.lockClassOf(recv); class != nil {
					if id, ok := st.Lhs[0].(*ast.Ident); ok {
						if obj := w.objOf(id); obj != nil {
							w.tryVars[obj] = class
							return
						}
					}
				}
			}
		}
	}
	for _, r := range st.Rhs {
		w.walkExpr(r, false)
	}
}

func (w *lockWalker) objOf(id *ast.Ident) types.Object {
	if obj := w.lo.pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return w.lo.pass.Info.Uses[id]
}

// walkIf handles TryLock guards: in `if mu.TryLock() { ... }` (or through a
// boolean from walkAssign) the class is held in the then-branch; negated, in
// the else-branch.
func (w *lockWalker) walkIf(st *ast.IfStmt) {
	w.walkStmt(st.Init)
	cond := ast.Unparen(st.Cond)
	negated := false
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		cond, negated = ast.Unparen(u.X), true
	}
	var guarded types.Object
	switch c := cond.(type) {
	case *ast.CallExpr:
		if recv, method, isMutex := mutexMethodCall(w.lo.pass, c); isMutex && lockTry[method] {
			guarded = w.lo.lockClassOf(recv)
		} else {
			w.walkExpr(c, false)
		}
	case *ast.Ident:
		if obj := w.lo.pass.Info.Uses[c]; obj != nil {
			guarded = w.tryVars[obj]
		}
	default:
		w.walkExpr(cond, false)
	}

	walkBranch := func(s ast.Stmt, hold bool) {
		saved := w.snapshot()
		if hold && guarded != nil {
			w.lo.recordEdges(w.held, guarded, st.Pos())
			w.held = append(w.held, guarded)
		}
		w.walkStmt(s)
		w.restore(saved)
	}
	walkBranch(st.Body, !negated)
	if st.Else != nil {
		walkBranch(st.Else, negated)
	}
}

// walkExprOpt walks an optional expression.
func (w *lockWalker) walkExprOpt(e ast.Expr) {
	if e != nil {
		w.walkExpr(e, false)
	}
}

// walkExpr processes calls nested in an expression in evaluation order.
func (w *lockWalker) walkExpr(e ast.Expr, isDefer bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		for _, arg := range x.Args {
			w.walkExpr(arg, false)
		}
		w.handleCall(x, isDefer)
	case *ast.BinaryExpr:
		w.walkExpr(x.X, false)
		w.walkExpr(x.Y, false)
	case *ast.UnaryExpr:
		w.walkExpr(x.X, false)
	case *ast.StarExpr:
		w.walkExpr(x.X, false)
	case *ast.IndexExpr:
		w.walkExpr(x.X, false)
		w.walkExpr(x.Index, false)
	case *ast.SelectorExpr:
		w.walkExpr(x.X, false)
	case *ast.FuncLit:
		// A bare closure in expression position is walked with the current
		// stack: the dominant idiom here is a synchronous callback
		// (parallel.For bodies, registry.each visitors).
		saved := w.snapshot()
		w.walkStmt(x.Body)
		w.restore(saved)
	}
}

// handleCall applies one call's locking effect to the held stack.
func (w *lockWalker) handleCall(call *ast.CallExpr, isDefer bool) {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		// Immediately-invoked (or deferred) closure: walk its body inline.
		saved := w.snapshot()
		w.walkStmt(lit.Body)
		w.restore(saved)
		return
	}
	if recv, method, isMutex := mutexMethodCall(w.lo.pass, call); isMutex {
		class := w.lo.lockClassOf(recv)
		if class == nil {
			return
		}
		w.applyLockOp(class, method, isDefer, call.Pos())
		return
	}
	// l() where l is a bound lock method.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := w.lo.pass.Info.Uses[id]; obj != nil {
			if bound, isBound := w.methodVals[obj]; isBound {
				w.applyLockOp(bound.class, bound.method, isDefer, call.Pos())
				return
			}
		}
	}
	if callee := w.lo.calleeFunc(call); callee != nil {
		for c := range w.lo.acquires[callee] {
			w.lo.recordEdges(w.held, c, call.Pos())
		}
	}
}

// applyLockOp mutates the held stack for one lock/unlock.
func (w *lockWalker) applyLockOp(class types.Object, method string, isDefer bool, pos token.Pos) {
	switch {
	case lockAcquire[method], lockTry[method]:
		// A TryLock in statement position (result discarded) is treated as an
		// acquisition; guarded forms are handled in walkIf/walkAssign.
		w.lo.recordEdges(w.held, class, pos)
		w.held = append(w.held, class)
	case lockRelease[method]:
		if isDefer {
			return // deferred unlock: held until function end
		}
		for i := len(w.held) - 1; i >= 0; i-- {
			if w.held[i] == class {
				w.held = append(w.held[:i], w.held[i+1:]...)
				return
			}
		}
	}
}

// reportCycles finds every edge that participates in a cycle of the lock
// graph and reports it at its first occurrence.
func (lo *lockOrder) reportCycles() {
	if len(lo.edges) == 0 {
		return
	}
	// Fix an edge order up front (first-occurrence position) so the
	// adjacency walk and the report sequence never depend on map iteration.
	keys := make([][2]types.Object, 0, len(lo.edges))
	for k := range lo.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lo.edges[keys[i]].pos < lo.edges[keys[j]].pos })
	adj := make(map[types.Object][]types.Object)
	for _, key := range keys {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	reaches := func(from, to types.Object) bool {
		seen := map[types.Object]bool{}
		var stack []types.Object
		stack = append(stack, from)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, adj[n]...)
		}
		return false
	}
	var cyclic []*lockEdge
	for _, key := range keys {
		if e := lo.edges[key]; reaches(e.to, e.from) {
			cyclic = append(cyclic, e)
		}
	}
	for _, e := range cyclic {
		msg := fmt.Sprintf("lock order cycle: %s is acquired while %s is held here", lo.names[e.to], lo.names[e.from])
		if rev, ok := lo.edges[[2]types.Object{e.to, e.from}]; ok {
			p := lo.pass.Fset.Position(rev.pos)
			msg += fmt.Sprintf(", but %s is acquired while %s is held at %s:%d", lo.names[e.from], lo.names[e.to], p.Filename, p.Line)
		} else {
			msg += " and is part of a cycle through a third lock"
		}
		msg += "; pick one acquisition order and enforce it everywhere"
		lo.pass.Reportf(e.pos, "%s", msg)
	}
}
