package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRand forbids the math/rand package-level functions (rand.Intn,
// rand.Float64, rand.Shuffle, ...) and wall-clock seeding
// (rand.NewSource(time.Now()...)) outside test files. All randomness in the
// reproduction must flow through explicitly-seeded per-component *rand.Rand
// values so a run is a pure function of its configured seeds; the shared
// global source is both cross-component coupled and racy under the worker
// pool.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "math/rand global functions or wall-clock-seeded sources outside tests",
	Run:  runGlobalRand,
}

// globalRandAllowed are the math/rand package-level names that do not touch
// the global source: constructors for explicit generators.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runGlobalRand(pass *Pass) {
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := selectedFunc(pass, sel)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // method on *rand.Rand etc. — explicitly seeded, fine
			}
			if !globalRandAllowed[fn.Name()] {
				pass.Reportf(call.Pos(), "rand.%s uses the shared global math/rand source; thread an explicitly-seeded *rand.Rand instead", fn.Name())
				return true
			}
			if fn.Name() == "NewSource" && callsWallClock(pass, call.Args) {
				pass.Reportf(call.Pos(), "rand.NewSource seeded from time.Now makes runs irreproducible; derive the seed from configuration")
			}
			return true
		})
	}
}

// callsWallClock reports whether any of the expressions calls time.Now.
func callsWallClock(pass *Pass, exprs []ast.Expr) bool {
	found := false
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fn := selectedFunc(pass, sel); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && fn.Name() == "Now" {
				found = true
			}
			return !found
		})
	}
	return found
}
