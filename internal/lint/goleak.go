package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak upgrades the raw-`go`-statement policy to a join check: every
// goroutine spawned in an internal package must carry evidence that someone
// waits for it — a sync.WaitGroup Done, a completion-channel close or send,
// or a shutdown/context channel it receives from. PR 5 and PR 6 each caught
// a goroutine that outlived Close with a hand-written leak test; this moves
// the class to lint time.
//
// The check is presence-based, not path-sensitive: the spawned body (a func
// literal, or a same-package function so `go s.acceptLoop()` resolves) must
// contain at least one join token. A goroutine whose callee lives outside
// the package cannot be verified and is reported too — wrap it in a local
// closure that signals completion.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines in internal/ packages with no join (WaitGroup, done channel, or shutdown receive)",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) {
	if _, ok := pass.InternalPath(); !ok {
		return
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pass, g.Call)
			if body == nil {
				pass.Reportf(g.Pos(), "cannot verify that this goroutine is joined (callee is outside the package); spawn a local closure that calls wg.Done or closes a done channel")
				return true
			}
			if !hasJoinToken(pass, body) {
				pass.Reportf(g.Pos(), "goroutine is never joined: no WaitGroup.Done, completion-channel close/send, or shutdown-channel receive in its body — it can outlive Close")
			}
			return true
		})
	}
}

// goBody resolves the spawned call to the statement body the join evidence
// must live in: the func literal itself, or the declaration of a
// same-package function or method.
func goBody(pass *Pass, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		return pkgFuncBody(pass, fun)
	case *ast.SelectorExpr:
		return pkgFuncBody(pass, fun.Sel)
	}
	return nil
}

// pkgFuncBody finds the body of the package function id names, or nil.
func pkgFuncBody(pass *Pass, id *ast.Ident) *ast.BlockStmt {
	fn, _ := pass.Info.Uses[id].(*types.Func)
	if fn == nil || fn.Pkg() != pass.Pkg {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.Info.Defs[fd.Name] == fn {
				return fd.Body
			}
		}
	}
	return nil
}

// hasJoinToken reports whether body contains evidence of a join: a
// WaitGroup.Done (or context.Context.Done) call, a close of or send on a
// channel from the enclosing scope, or a receive (including range) from one.
func hasJoinToken(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if fn := selectedFunc(pass, sel); fn != nil && fn.Name() == "Done" && fn.Pkg() != nil {
					switch fn.Pkg().Path() {
					case "sync", "context":
						found = true
						return false
					}
				}
			}
			if isBuiltin(pass, x.Fun, "close") && len(x.Args) == 1 && outerChan(pass, body, x.Args[0]) {
				found = true
				return false
			}
		case *ast.SendStmt:
			if outerChan(pass, body, x.Chan) {
				found = true
				return false
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && outerChan(pass, body, x.X) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan && outerChan(pass, body, x.X) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// outerChan reports whether e is a channel that outlives the goroutine body:
// a struct field, or a variable declared outside body (so closing/receiving
// it is observable by the spawner). A channel created inside the goroutine
// joins nothing.
func outerChan(pass *Pass, body *ast.BlockStmt, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		// ctx.Done() and friends: a channel-returning call on an outer value.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			return outerChan(pass, body, sel.X)
		}
		return false
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		return true // fields and package vars live beyond the goroutine
	case *ast.Ident:
		obj := pass.Info.Uses[x]
		if obj == nil {
			return false
		}
		return obj.Pos() < body.Pos() || obj.Pos() > body.End()
	}
	return false
}
