package lint

import (
	"go/ast"
)

// RawGo flags raw `go func` fan-out inside internal/ packages. PR 1 funneled
// all simulation concurrency through the deterministic worker pool in
// internal/parallel precisely so worker count cannot change results; an
// unmanaged goroutine reintroduces scheduling-order dependence and escapes
// the pool's panic propagation and sizing. internal/parallel itself and the
// network servers internal/streaming and internal/coordinator (whose
// per-connection goroutines are inherent) are exempt, as are tests.
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc:  "raw go statements in internal/ packages outside the worker pool",
	Run:  runRawGo,
}

// rawGoExempt lists the internal packages allowed to start goroutines
// directly.
var rawGoExempt = map[string]bool{
	"internal/parallel":    true,
	"internal/streaming":   true,
	"internal/coordinator": true,
}

func runRawGo(pass *Pass) {
	rel, ok := pass.InternalPath()
	if !ok || rawGoExempt[rel] {
		return
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "raw go statement in %s; route concurrency through the internal/parallel worker pool", rel)
			}
			return true
		})
	}
}
