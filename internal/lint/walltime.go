package lint

import (
	"go/ast"
)

// WallTime forbids reading the wall clock (time.Now, time.Since, time.Until)
// inside internal/ packages. The simulation runs on internal/simclock virtual
// time so that experiments replay bit-identically; a single time.Now in a hot
// path silently couples results to the host. The network-facing
// internal/streaming and internal/coordinator packages and the sampling
// layer internal/telemetry are exempt — they genuinely interoperate with
// real time — as are the cmd/ and examples/ front-ends, which time their own
// wall-clock progress reporting.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "wall-clock reads (time.Now/Since/Until) in internal/ packages that must use simclock",
	Run:  runWallTime,
}

// wallTimeExempt lists the internal packages allowed to read real time.
var wallTimeExempt = map[string]bool{
	"internal/streaming":   true,
	"internal/telemetry":   true,
	"internal/coordinator": true,
}

// wallClockFuncs are the time functions that observe the wall clock.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runWallTime(pass *Pass) {
	rel, ok := pass.InternalPath()
	if !ok || wallTimeExempt[rel] {
		return
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := selectedFunc(pass, sel)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(), "time.%s in %s breaks replayability; use the simclock virtual clock", fn.Name(), rel)
			}
			return true
		})
	}
}
