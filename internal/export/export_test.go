package export

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestSeriesAddAndColumn(t *testing.T) {
	s := NewSeries("test", "t", "a", "b")
	if err := s.Add(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(3, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(1, 2, 3); err == nil {
		t.Error("wrong arity accepted")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	a, ok := s.Column("a")
	if !ok || a[0] != 1 || a[1] != 3 {
		t.Errorf("Column(a) = %v, %v", a, ok)
	}
	if _, ok := s.Column("zzz"); ok {
		t.Error("missing column found")
	}
}

func TestWriteCSV(t *testing.T) {
	s := NewSeries("fig", "sec", "util")
	s.Add(50)
	s.Add(75.5)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	if lines[0] != "sec,util" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "1,75.5") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestSaveCSV(t *testing.T) {
	dir := t.TempDir()
	s := NewSeries("Fig 9 / Co-location", "t", "x")
	s.Add(1)
	path, err := s.SaveCSV(filepath.Join(dir, "sub"))
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "fig-9-co-location.csv" {
		t.Errorf("file name = %s", filepath.Base(path))
	}
	if _, err := os.Stat(path); err != nil {
		t.Error(err)
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"Fig 10":     "fig-10",
		"***":        "series",
		"A/B_c":      "a-b-c",
		"  spaces  ": "spaces",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Error("empty sparkline not empty")
	}
	flat := Sparkline([]float64{5, 5, 5}, 0)
	if utf8.RuneCountInString(flat) != 3 {
		t.Errorf("flat sparkline runes = %d", utf8.RuneCountInString(flat))
	}
	ramp := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	runes := []rune(ramp)
	if runes[0] != '▁' || runes[len(runes)-1] != '█' {
		t.Errorf("ramp = %q", ramp)
	}
	// Downsampling caps the width.
	long := make([]float64, 1000)
	for i := range long {
		long[i] = float64(i)
	}
	if got := utf8.RuneCountInString(Sparkline(long, 40)); got != 40 {
		t.Errorf("downsampled width = %d", got)
	}
}

func TestDownsamplePreservesMean(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 10 {
			return true
		}
		vals := make([]float64, len(raw))
		var sum float64
		for i, v := range raw {
			vals[i] = float64(v)
			sum += float64(v)
		}
		ds := downsample(vals, 10)
		// Bucket means stay within the original range.
		for _, v := range ds {
			if v < 0 || v > 255 {
				return false
			}
		}
		return len(ds) == 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChart(t *testing.T) {
	s := NewSeries("util", "sec", "genshin", "dota2")
	for i := 0; i < 100; i++ {
		s.Add(float64(i%70), float64((i*3)%40))
	}
	c := Chart(s, 50)
	if !strings.Contains(c, "genshin") || !strings.Contains(c, "dota2") {
		t.Errorf("chart missing columns: %s", c)
	}
	if !strings.Contains(c, "[0.0..69.0]") {
		t.Errorf("chart missing range annotation: %s", c)
	}
}
