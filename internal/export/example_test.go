package export_test

import (
	"fmt"
	"os"

	"cocg/internal/export"
)

// ExampleSparkline renders a compact terminal chart of a utilization series.
func ExampleSparkline() {
	values := []float64{0, 10, 20, 40, 80, 40, 20, 10, 0}
	fmt.Println(export.Sparkline(values, 0))
	// Output: ▁▁▂▄█▄▂▁▁
}

// ExampleSeries_WriteCSV dumps a figure series as CSV for external plotting.
func ExampleSeries_WriteCSV() {
	s := export.NewSeries("fig9", "second", "genshin", "dota2")
	s.Add(42.5, 18.0)
	s.Add(70.0, 4.5)
	s.WriteCSV(os.Stdout)
	// Output:
	// second,genshin,dota2
	// 0,42.500,18.000
	// 1,70.000,4.500
}
