// Package export renders experiment series as CSV files (for external
// plotting) and as ASCII charts (for terminal inspection), so every figure
// of the paper can be eyeballed straight from the experiment driver.
package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Series is a named set of aligned columns sampled over time.
type Series struct {
	Name    string
	XLabel  string
	Columns []string
	Rows    [][]float64
}

// NewSeries builds an empty series with the given columns.
func NewSeries(name, xlabel string, columns ...string) *Series {
	return &Series{Name: name, XLabel: xlabel, Columns: columns}
}

// Add appends one row; the value count must match the column count.
func (s *Series) Add(values ...float64) error {
	if len(values) != len(s.Columns) {
		return fmt.Errorf("export: row has %d values, want %d", len(values), len(s.Columns))
	}
	s.Rows = append(s.Rows, values)
	return nil
}

// MustAdd appends one row and panics on a column-count mismatch. It is for
// callers that build the row from the series' own column list, where a
// mismatch is a programming error rather than a runtime condition.
func (s *Series) MustAdd(values ...float64) {
	if err := s.Add(values...); err != nil {
		panic(err)
	}
}

// Len returns the number of rows.
func (s *Series) Len() int { return len(s.Rows) }

// Column extracts one column by name.
func (s *Series) Column(name string) ([]float64, bool) {
	idx := -1
	for i, c := range s.Columns {
		if c == name {
			idx = i
		}
	}
	if idx < 0 {
		return nil, false
	}
	out := make([]float64, len(s.Rows))
	for i, r := range s.Rows {
		out[i] = r[idx]
	}
	return out, true
}

// WriteCSV emits the series with a header row; the first column is the row
// index under XLabel.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{s.XLabel}, s.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, row := range s.Rows {
		rec := make([]string, 0, len(row)+1)
		rec = append(rec, strconv.Itoa(i))
		for _, v := range row {
			rec = append(rec, strconv.FormatFloat(v, 'f', 3, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the series to dir/<name>.csv, creating dir if needed.
func (s *Series) SaveCSV(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, sanitize(s.Name)+".csv")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := s.WriteCSV(f); err != nil {
		_ = f.Close() // write error dominates
		return "", err
	}
	return path, f.Close()
}

// sanitize turns a series name into a safe file stem.
func sanitize(name string) string {
	var b strings.Builder
	prevDash := false
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			prevDash = false
		case r == ' ', r == '/', r == '-', r == '_':
			if !prevDash {
				b.WriteByte('-')
				prevDash = true
			}
		}
	}
	out := strings.Trim(b.String(), "-")
	if out == "" {
		out = "series"
	}
	return out
}

// sparkRunes are the eight-level block characters of a sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact one-line chart, downsampling to at
// most width points (0 = no limit).
func Sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	vs := values
	if width > 0 && len(vs) > width {
		vs = downsample(vs, width)
	}
	lo, hi := vs[0], vs[0]
	for _, v := range vs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range vs {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// downsample averages values into n buckets.
func downsample(values []float64, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(values) / n
		hi := (i + 1) * len(values) / n
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// Chart renders a multi-line ASCII chart of the series' columns, one
// sparkline per column with min/max annotations — enough to see the shape
// of Figs. 2, 9, and 10 in a terminal.
func Chart(s *Series, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (x = %s, %d samples)\n", s.Name, s.XLabel, s.Len())
	nameW := 0
	for _, c := range s.Columns {
		if len(c) > nameW {
			nameW = len(c)
		}
	}
	for _, col := range s.Columns {
		vals, _ := s.Column(col)
		if len(vals) == 0 {
			continue
		}
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		fmt.Fprintf(&b, "  %-*s %s  [%.1f..%.1f]\n", nameW, col, Sparkline(vals, width), lo, hi)
	}
	return b.String()
}
