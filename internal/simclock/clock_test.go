package simclock

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("new clock Now = %d", c.Now())
	}
}

func TestAdvanceAndTick(t *testing.T) {
	var c Clock
	if got := c.Advance(10); got != 10 {
		t.Errorf("Advance(10) = %d", got)
	}
	if got := c.Tick(); got != 11 {
		t.Errorf("Tick = %d", got)
	}
	if c.Now() != 11 {
		t.Errorf("Now = %d", c.Now())
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative advance did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestReset(t *testing.T) {
	var c Clock
	c.Advance(100)
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("Now after Reset = %d", c.Now())
	}
}

func TestString(t *testing.T) {
	cases := map[Seconds]string{
		0:                     "0:00:00",
		61:                    "0:01:01",
		2*Hour + 3*Minute + 4: "2:03:04",
		-61:                   "-0:01:01",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestFrameHelpers(t *testing.T) {
	if FrameIndex(0) != 0 || FrameIndex(4) != 0 || FrameIndex(5) != 1 {
		t.Error("FrameIndex boundaries wrong")
	}
	if FrameStart(7) != 5 || FrameStart(5) != 5 || FrameStart(4) != 0 {
		t.Error("FrameStart wrong")
	}
	if !IsFrameBoundary(0) || !IsFrameBoundary(10) || IsFrameBoundary(3) {
		t.Error("IsFrameBoundary wrong")
	}
}

func TestPropertyFrameStartConsistent(t *testing.T) {
	f := func(raw uint32) bool {
		tt := Seconds(raw % 1_000_000)
		fs := FrameStart(tt)
		return fs <= tt && tt-fs < FrameLen && IsFrameBoundary(fs) &&
			FrameIndex(fs) == FrameIndex(tt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyAdvanceMonotonic(t *testing.T) {
	f := func(steps []uint16) bool {
		var c Clock
		prev := c.Now()
		for _, s := range steps {
			now := c.Advance(Seconds(s))
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
