package simclock_test

import (
	"fmt"

	"cocg/internal/simclock"
)

// ExampleClock shows the virtual time base every CoCG component shares.
func ExampleClock() {
	var c simclock.Clock
	c.Advance(2*simclock.Hour + 3*simclock.Minute + 4*simclock.Second)
	fmt.Println(c.Now())
	fmt.Println(simclock.IsFrameBoundary(c.Now()))
	// Output:
	// 2:03:04
	// false
}

// ExampleFrameIndex maps seconds onto the paper's 5-second detection frames.
func ExampleFrameIndex() {
	for _, t := range []simclock.Seconds{0, 4, 5, 12} {
		fmt.Println(t, "->", simclock.FrameIndex(t))
	}
	// Output:
	// 0:00:00 -> 0
	// 0:00:04 -> 0
	// 0:00:05 -> 1
	// 0:00:12 -> 2
}
