// Package simclock provides the deterministic discrete-time base used by the
// whole CoCG simulation.
//
// The paper's real-time system samples every 5 seconds of wall-clock time;
// here one tick is one virtual second, so a "frame" (Section IV-A2) is 5
// ticks. Running on virtual time makes every experiment reproducible and lets
// two simulated hours (Fig. 11) complete in milliseconds.
package simclock

import "fmt"

// Seconds is a point in, or span of, virtual time measured in whole seconds.
type Seconds int64

// Common spans.
const (
	Second Seconds = 1
	Minute         = 60 * Second
	Hour           = 60 * Minute

	// FrameLen is the paper's 5-second frame / detection interval.
	FrameLen = 5 * Second
)

// String formats the time as h:mm:ss.
func (s Seconds) String() string {
	neg := ""
	if s < 0 {
		neg, s = "-", -s
	}
	return fmt.Sprintf("%s%d:%02d:%02d", neg, s/Hour, (s%Hour)/Minute, s%Minute)
}

// Clock is a monotonic virtual clock. The zero value starts at t=0.
type Clock struct {
	now Seconds
}

// Now returns the current virtual time.
func (c *Clock) Now() Seconds { return c.now }

// Advance moves the clock forward by d seconds. It panics when d is negative
// because virtual time, like real time, only moves forward; a negative step
// is always a caller bug.
func (c *Clock) Advance(d Seconds) Seconds {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative advance %d", d))
	}
	c.now += d
	return c.now
}

// Tick advances the clock by one second.
func (c *Clock) Tick() Seconds { return c.Advance(Second) }

// Reset rewinds the clock to t=0; only tests and experiment harnesses that
// reuse a simulation should call it.
func (c *Clock) Reset() { c.now = 0 }

// FrameIndex returns which 5-second frame the time t falls into.
func FrameIndex(t Seconds) int64 { return int64(t / FrameLen) }

// FrameStart returns the start time of the frame containing t.
func FrameStart(t Seconds) Seconds { return (t / FrameLen) * FrameLen }

// IsFrameBoundary reports whether t is the first second of a frame; the
// predictor's detection loop fires on these ticks.
func IsFrameBoundary(t Seconds) bool { return t%FrameLen == 0 }
