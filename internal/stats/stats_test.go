package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Variance(xs), 4) {
		t.Errorf("Variance = %v, want 4", Variance(xs))
	}
	if !almost(StdDev(xs), 2) {
		t.Errorf("StdDev = %v, want 2", StdDev(xs))
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of singleton != 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 11 {
		t.Errorf("Min/Max/Sum = %v/%v/%v", Min(xs), Max(xs), Sum(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 || Sum(nil) != 0 {
		t.Error("empty-slice aggregates not zero")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {120, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	if !almost(Median(xs), 3) {
		t.Error("Median wrong")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestAccuracy(t *testing.T) {
	var a Accuracy
	if a.Value() != 0 {
		t.Error("empty accuracy != 0")
	}
	a.Observe(true)
	a.Observe(true)
	a.Observe(false)
	if !almost(a.Value(), 2.0/3) {
		t.Errorf("Value = %v", a.Value())
	}
	var b Accuracy
	b.Observe(true)
	a.Merge(b)
	if a.Correct != 3 || a.Total != 4 {
		t.Errorf("after Merge: %+v", a)
	}
}

func TestPropertyMeanWithinBounds(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return Mean(xs) == 0
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // skip pathological inputs
			}
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyPercentileMonotonic(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(xs, p1) <= Percentile(xs, p2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyVarianceNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
