// Package stats provides the small set of statistics helpers the experiment
// harnesses and the clusterer share: means, variances, percentiles, and
// simple accuracy accounting.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Accuracy is an online counter of correct/total classification outcomes.
type Accuracy struct {
	Correct int
	Total   int
}

// Observe records one outcome.
func (a *Accuracy) Observe(correct bool) {
	a.Total++
	if correct {
		a.Correct++
	}
}

// Value returns the fraction correct in [0, 1], or 0 when nothing was
// observed.
func (a *Accuracy) Value() float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Correct) / float64(a.Total)
}

// Merge folds another accuracy counter into a.
func (a *Accuracy) Merge(b Accuracy) {
	a.Correct += b.Correct
	a.Total += b.Total
}
