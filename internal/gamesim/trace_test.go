package gamesim

import (
	"testing"

	"cocg/internal/resources"
	"cocg/internal/simclock"
)

func TestRecordProducesConsistentTrace(t *testing.T) {
	tr, err := Record(GenshinImpact(), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Seconds) == 0 || len(tr.Frames) == 0 || len(tr.Visits) == 0 {
		t.Fatal("empty trace")
	}
	wantFrames := (len(tr.Seconds) + int(simclock.FrameLen) - 1) / int(simclock.FrameLen)
	if len(tr.Frames) != wantFrames {
		t.Errorf("frames = %d, want %d", len(tr.Frames), wantFrames)
	}
	// Visits must tile the frame range exactly.
	pos := 0
	for _, v := range tr.Visits {
		if v.StartFrame != pos || v.EndFrame <= v.StartFrame {
			t.Fatalf("visit %+v does not tile at %d", v, pos)
		}
		pos = v.EndFrame
	}
	if pos != len(tr.Frames) {
		t.Errorf("visits cover %d frames of %d", pos, len(tr.Frames))
	}
}

func TestTraceAlternatesLoadingAndExec(t *testing.T) {
	tr, err := Record(Contra(), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	// First visit must be the initial loading.
	if !tr.Visits[0].Loading {
		t.Error("trace does not start with loading")
	}
	for i := 1; i < len(tr.Visits); i++ {
		if tr.Visits[i].Loading == tr.Visits[i-1].Loading {
			t.Errorf("visits %d and %d have the same loading flag", i-1, i)
		}
	}
	// Contra script 3 runs three levels: 3 exec visits.
	if got := len(tr.ExecVisits()); got != 3 {
		t.Errorf("exec visits = %d, want 3", got)
	}
}

func TestTraceFrameVectors(t *testing.T) {
	tr, err := Record(Contra(), 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	vecs := tr.FrameVectors()
	if len(vecs) != len(tr.Frames) {
		t.Fatal("FrameVectors length mismatch")
	}
	for i, v := range vecs {
		if v != tr.Frames[i].Demand {
			t.Fatal("FrameVectors content mismatch")
		}
	}
}

func TestLoadingFramesLookLikeLoading(t *testing.T) {
	tr, err := Record(DevilMayCry(), 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Boundary frames mix loading and execution seconds, so check only
	// interior loading frames (both neighbors also loading).
	for i := 1; i < len(tr.Frames)-1; i++ {
		f := tr.Frames[i]
		if f.Loading && tr.Frames[i-1].Loading && tr.Frames[i+1].Loading &&
			f.Demand[resources.GPU] > 20 {
			t.Errorf("loading frame %d has GPU %v", f.Frame, f.Demand[resources.GPU])
		}
	}
}

func TestRecordDeterministic(t *testing.T) {
	a, err := Record(DOTA2(), 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Record(DOTA2(), 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Frames) != len(b.Frames) {
		t.Fatalf("frame counts differ: %d vs %d", len(a.Frames), len(b.Frames))
	}
	for i := range a.Frames {
		if a.Frames[i].Demand != b.Frames[i].Demand {
			t.Fatalf("frame %d differs", i)
		}
	}
}

func TestRecordCorpus(t *testing.T) {
	g := Contra()
	corpus, err := RecordCorpus(g, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != len(g.Scripts)*2 {
		t.Fatalf("corpus size = %d, want %d", len(corpus), len(g.Scripts)*2)
	}
	scriptSeen := map[int]int{}
	for _, tr := range corpus {
		scriptSeen[tr.Script]++
		if tr.Game != g.Name {
			t.Errorf("trace game = %q", tr.Game)
		}
	}
	for si := range g.Scripts {
		if scriptSeen[si] != 2 {
			t.Errorf("script %d appears %d times, want 2", si, scriptSeen[si])
		}
	}
}

func TestRecordBadScript(t *testing.T) {
	if _, err := Record(Contra(), 99, 1); err == nil {
		t.Error("bad script index did not error")
	}
}
