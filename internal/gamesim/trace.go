package gamesim

import (
	"fmt"

	"cocg/internal/resources"
	"cocg/internal/simclock"
)

// SecondSample is one virtual second of an offline profiling run at full
// resource supply.
type SecondSample struct {
	T         simclock.Seconds
	Demand    resources.Vector
	StageType int // ground truth
	Cluster   int // ground truth
	Loading   bool
}

// FrameSample aggregates FrameLen (5) seconds into one frame — the unit the
// paper clusters (Section IV-A2).
type FrameSample struct {
	Frame     int
	Demand    resources.Vector // mean demand over the frame
	StageType int              // ground-truth majority stage type
	Cluster   int              // ground-truth majority cluster
	Loading   bool             // ground truth: majority of seconds loading
}

// StageVisit is one contiguous ground-truth stage occurrence in a trace.
type StageVisit struct {
	Type       int
	StartFrame int // inclusive
	EndFrame   int // exclusive
	Loading    bool
}

// Trace is the full observable record of one profiling session.
type Trace struct {
	Game    string
	Script  int
	Player  int64 // player identity, stable across sessions
	Cohort  int64 // players who queue together (MMORPG sample packing)
	Habit   int64 // the habit seed the session was realized with
	Session int64 // session seed: distinguishes replays by the same player
	Seconds []SecondSample
	Frames  []FrameSample
	Visits  []StageVisit
}

// FrameVectors returns just the frame demand vectors, the clusterer's input.
func (t *Trace) FrameVectors() []resources.Vector {
	out := make([]resources.Vector, len(t.Frames))
	for i, f := range t.Frames {
		out[i] = f.Demand
	}
	return out
}

// ExecVisits returns the non-loading stage visits in order.
func (t *Trace) ExecVisits() []StageVisit {
	var out []StageVisit
	for _, v := range t.Visits {
		if !v.Loading {
			out = append(out, v)
		}
	}
	return out
}

// Record runs a full session of spec's script at unconstrained supply and
// returns its trace. This is the offline profiling pass of Section IV-A: the
// pre-experiment the paper performs once per game per platform.
func Record(spec *GameSpec, scriptIdx int, seed int64) (*Trace, error) {
	return RecordPlayer(spec, scriptIdx, seed, seed)
}

// RecordPlayer records one session of a specific player (habit seed) with a
// specific session seed, at unconstrained supply.
func RecordPlayer(spec *GameSpec, scriptIdx int, habitSeed, sessionSeed int64) (*Trace, error) {
	sess, err := NewPlayerSession(spec, scriptIdx, habitSeed, sessionSeed)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Game: spec.Name, Script: scriptIdx, Player: habitSeed, Habit: habitSeed, Session: sessionSeed}
	var clk simclock.Clock
	const maxTicks = int(4 * simclock.Hour) // safety bound; no script runs this long
	for i := 0; i < maxTicks && !sess.Done(); i++ {
		d := sess.Demand()
		tr.Seconds = append(tr.Seconds, SecondSample{
			T:         clk.Now(),
			Demand:    d,
			StageType: sess.StageType(),
			Cluster:   sess.Cluster(),
			Loading:   sess.Phase() == PhaseLoading,
		})
		sess.Step(resources.FullServer)
		clk.Tick()
	}
	if !sess.Done() {
		return nil, fmt.Errorf("gamesim: %s script %d did not finish within %s", spec.Name, scriptIdx, simclock.Seconds(maxTicks))
	}
	tr.Frames = frameAggregate(tr.Seconds)
	tr.Visits = segment(tr.Frames)
	return tr, nil
}

// frameAggregate folds per-second samples into 5-second frames, labeling
// each frame with the majority ground-truth stage.
func frameAggregate(secs []SecondSample) []FrameSample {
	var frames []FrameSample
	for start := 0; start < len(secs); start += int(simclock.FrameLen) {
		end := start + int(simclock.FrameLen)
		if end > len(secs) {
			end = len(secs)
		}
		var sum resources.Vector
		typeCount := map[int]int{}
		clusterCount := map[int]int{}
		loading := 0
		for _, s := range secs[start:end] {
			sum = sum.Add(s.Demand)
			typeCount[s.StageType]++
			clusterCount[s.Cluster]++
			if s.Loading {
				loading++
			}
		}
		n := end - start
		frames = append(frames, FrameSample{
			Frame:     len(frames),
			Demand:    sum.Scale(1 / float64(n)),
			StageType: majorityKey(typeCount),
			Cluster:   majorityKey(clusterCount),
			Loading:   loading*2 > n,
		})
	}
	return frames
}

func majorityKey(counts map[int]int) int {
	best, bestN := 0, -1
	for k, n := range counts {
		if n > bestN || (n == bestN && k < best) {
			best, bestN = k, n
		}
	}
	return best
}

// segment groups consecutive frames with the same ground-truth stage type
// into visits.
func segment(frames []FrameSample) []StageVisit {
	var visits []StageVisit
	for i := 0; i < len(frames); {
		j := i
		for j < len(frames) && frames[j].StageType == frames[i].StageType && frames[j].Loading == frames[i].Loading {
			j++
		}
		visits = append(visits, StageVisit{
			Type:       frames[i].StageType,
			StartFrame: i,
			EndFrame:   j,
			Loading:    frames[i].Loading,
		})
		i = j
	}
	return visits
}

// RecordCorpus records traces for every script of the game across several
// simulated players; this is the training corpus generator that stands in
// for the paper's Alibaba-cloud logs plus laboratory replays.
func RecordCorpus(spec *GameSpec, playersPerScript int, seed int64) ([]*Trace, error) {
	var out []*Trace
	for si := range spec.Scripts {
		for p := 0; p < playersPerScript; p++ {
			tr, err := Record(spec, si, seed+int64(si*10_000+p))
			if err != nil {
				return nil, err
			}
			out = append(out, tr)
		}
	}
	return out, nil
}

// CorpusConfig shapes a player-structured corpus.
type CorpusConfig struct {
	Players           int   // distinct players (habit seeds)
	SessionsPerPlayer int   // replays per player
	CohortSize        int   // players per MMORPG cohort; <=0 means 4
	Seed              int64 // base seed
}

// RecordPlayerCorpus records a player-structured corpus: each player keeps a
// stable habit across SessionsPerPlayer sessions, scripts are drawn by the
// player's habit for mobile games (a daily routine) and per-session for the
// rest, and MMORPG players are grouped into cohorts whose members share
// match dynamics. It generates the data the four training-set selection
// strategies of Section IV-B1 operate on.
func RecordPlayerCorpus(spec *GameSpec, cfg CorpusConfig) ([]*Trace, error) {
	if cfg.Players < 1 || cfg.SessionsPerPlayer < 1 {
		return nil, fmt.Errorf("gamesim: corpus needs at least one player and session")
	}
	cohortSize := cfg.CohortSize
	if cohortSize <= 0 {
		cohortSize = 4
	}
	var out []*Trace
	for p := 0; p < cfg.Players; p++ {
		habit := cfg.Seed + int64(p)*1_000_003
		cohort := int64(p / cohortSize)
		if spec.Category == MMORPG {
			// Queueing together means sharing match dynamics: cohort members
			// use the cohort's habit seed.
			habit = cfg.Seed + cohort*1_000_003
		}
		for s := 0; s < cfg.SessionsPerPlayer; s++ {
			sessSeed := cfg.Seed + int64(p)*7919 + int64(s)*104_729 + 1
			script := int((uint64(habit) ^ uint64(s)*0x9e3779b9) % uint64(len(spec.Scripts)))
			switch spec.Category {
			case Mobile:
				// A mobile player's daily routine: the habit picks the script.
				script = int(uint64(habit) % uint64(len(spec.Scripts)))
			case Console:
				// Console players progress through the campaign: session s
				// continues where the previous one stopped, which is what
				// the whole-process sample chaining captures.
				script = s % len(spec.Scripts)
			}
			tr, err := RecordPlayer(spec, script, habit, sessSeed)
			if err != nil {
				return nil, err
			}
			tr.Player = cfg.Seed + int64(p)*1_000_003 // player identity, even in cohorts
			tr.Cohort = cohort
			tr.Habit = habit
			out = append(out, tr)
		}
	}
	return out, nil
}
