package gamesim

import (
	"fmt"

	"cocg/internal/resources"
	"cocg/internal/simclock"
)

// The five evaluated workloads (Section V-A, Table I). Cluster counts follow
// the elbow choices of Fig. 14 (Contra 2, CSGO 4, Genshin Impact 4, DOTA2 5,
// Devil May Cry 6); per-script stage-type counts follow Table I; frame caps
// follow Section V-C2 (Genshin Impact and Devil May Cry are engine-locked,
// CSGO and DOTA2 are uncapped).

// DOTA2 is a 3D MOBA: complex stages and significant user influence
// (MMORPG & MOBA quadrant of Fig. 7).
func DOTA2() *GameSpec {
	return &GameSpec{
		Name:     "DOTA2",
		Category: MMORPG,
		// Utilization calibrated to Fig. 9: DOTA2's peak grant is ~43 %.
		Clusters: []ClusterSpec{
			{Name: "loading", Demand: resources.New(50, 3, 10, 30), Jitter: 2.5},
			{Name: "laning", Demand: resources.New(30, 16, 22, 38), Jitter: 2.5},
			{Name: "teamfight", Demand: resources.New(52, 43, 34, 46), Jitter: 3.5},
			{Name: "push", Demand: resources.New(42, 32, 28, 42), Jitter: 3},
			{Name: "arcade", Demand: resources.New(36, 26, 26, 40), Jitter: 2.5},
		},
		StageTypes: []StageType{
			{Name: "loading", Clusters: []int{LoadingCluster}},
			{Name: "laning", Clusters: []int{1}, MeanDur: 300 * simclock.Second, DurJitter: 0.25},
			// Teamfights mix open fights and high-ground pushes: the paper's
			// "multiple clusters, one scene" stage.
			{Name: "teamfight", Clusters: []int{2, 3}, MeanDur: 180 * simclock.Second, DurJitter: 0.3},
			{Name: "arcade-build", Clusters: []int{4}, MeanDur: 120 * simclock.Second, DurJitter: 0.2},
			{Name: "arcade-wave", Clusters: []int{4}, MeanDur: 200 * simclock.Second, DurJitter: 0.3},
		},
		Scripts: []Script{
			{Name: "script 1", Desc: "conducting a match with 9 bots", Body: []int{1, 2}},
			{Name: "script 2", Desc: "playing a tower defense game in the arcade", Body: []int{3, 4}},
		},
		BaseFPS:    180,
		LoadMin:    10 * simclock.Second,
		LoadMax:    22 * simclock.Second,
		NominalLen: 40 * simclock.Minute,
		SpikeRate:  0.002,
	}
}

// CSGO is a 3D FPS: complex stages and significant user influence.
func CSGO() *GameSpec {
	return &GameSpec{
		Name:     "CSGO",
		Category: MMORPG,
		Clusters: []ClusterSpec{
			{Name: "loading", Demand: resources.New(48, 4, 12, 28), Jitter: 2.5},
			{Name: "buy-walk", Demand: resources.New(22, 24, 20, 30), Jitter: 2.5},
			{Name: "firefight", Demand: resources.New(45, 52, 34, 38), Jitter: 3.5},
			{Name: "clutch", Demand: resources.New(56, 66, 42, 42), Jitter: 4},
		},
		StageTypes: []StageType{
			{Name: "loading", Clusters: []int{LoadingCluster}},
			{Name: "buy-phase", Clusters: []int{1}, MeanDur: 45 * simclock.Second, DurJitter: 0.15},
			{Name: "firefight", Clusters: []int{2}, MeanDur: 120 * simclock.Second, DurJitter: 0.3},
			// Late rounds mix fights and smoked clutches.
			{Name: "clutch", Clusters: []int{2, 3}, MeanDur: 90 * simclock.Second, DurJitter: 0.35},
			{Name: "training-move", Clusters: []int{1}, MeanDur: 150 * simclock.Second, DurJitter: 0.2},
			{Name: "training-range", Clusters: []int{2}, MeanDur: 120 * simclock.Second, DurJitter: 0.2},
		},
		Scripts: []Script{
			{Name: "script 1", Desc: "conducting a match with 9 bots", Body: []int{1, 2, 3}},
			{Name: "script 2", Desc: "moving in the training map without shooting", Body: []int{4, 5}},
		},
		BaseFPS:    200,
		LoadMin:    10 * simclock.Second,
		LoadMax:    16 * simclock.Second,
		NominalLen: 35 * simclock.Minute,
		SpikeRate:  0.002,
	}
}

// GenshinImpact is the paper's mobile-game representative: simple stages but
// the strongest user influence (players reorder their daily tasks).
func GenshinImpact() *GameSpec {
	return &GameSpec{
		Name:     "Genshin Impact",
		Category: Mobile,
		// The battle scene is the game's peak; with transient bursts on top,
		// granted utilization tops out near Fig. 9's 78 %.
		Clusters: []ClusterSpec{
			{Name: "loading", Demand: resources.New(50, 5, 14, 36), Jitter: 2.5},
			{Name: "explore", Demand: resources.New(34, 36, 30, 44), Jitter: 3},
			{Name: "battle", Demand: resources.New(52, 70, 46, 50), Jitter: 4},
			{Name: "fly", Demand: resources.New(24, 26, 26, 40), Jitter: 2.5},
		},
		StageTypes: []StageType{
			{Name: "loading", Clusters: []int{LoadingCluster}},
			// The daily-menu stage reuses the explore cluster: the paper's
			// "one cluster, multiple scenes" stage.
			{Name: "daily-menu", Clusters: []int{1}, MeanDur: 80 * simclock.Second, DurJitter: 0.3},
			{Name: "run", Clusters: []int{1}, MeanDur: 200 * simclock.Second, DurJitter: 0.35},
			{Name: "battle", Clusters: []int{2}, MeanDur: 150 * simclock.Second, DurJitter: 0.4},
			{Name: "fly", Clusters: []int{3}, MeanDur: 120 * simclock.Second, DurJitter: 0.35},
		},
		Scripts: []Script{
			{Name: "script 1", Desc: "run + battle + fly", Body: []int{1, 2, 3, 4}},
			{Name: "script 2", Desc: "fly + battle + run", Body: []int{1, 4, 3, 2}},
			{Name: "script 3", Desc: "battle + run + fly", Body: []int{1, 3, 2, 4}},
		},
		BaseFPS:    60,
		FPSCap:     60,
		LoadMin:    12 * simclock.Second,
		LoadMax:    25 * simclock.Second,
		NominalLen: 12 * simclock.Minute,
		SpikeRate:  0.004,
	}
}

// DevilMayCry is the console representative: many level stages, little user
// influence on their order.
func DevilMayCry() *GameSpec {
	return &GameSpec{
		Name:     "Devil May Cry",
		Category: Console,
		Clusters: []ClusterSpec{
			{Name: "loading", Demand: resources.New(54, 4, 16, 34), Jitter: 2.5},
			{Name: "corridor", Demand: resources.New(30, 40, 36, 42), Jitter: 3},
			{Name: "brawl", Demand: resources.New(44, 56, 44, 46), Jitter: 3.5},
			{Name: "boss", Demand: resources.New(58, 76, 54, 50), Jitter: 4},
			{Name: "cutscene", Demand: resources.New(18, 22, 34, 40), Jitter: 2},
			{Name: "puzzle", Demand: resources.New(26, 32, 32, 40), Jitter: 2.5},
		},
		StageTypes: []StageType{
			{Name: "loading", Clusters: []int{LoadingCluster}},
			// Level one alternates corridors and brawls within one stage.
			{Name: "level1", Clusters: []int{1, 2}, MeanDur: 300 * simclock.Second, DurJitter: 0.2},
			{Name: "l2-cutscene", Clusters: []int{4}, MeanDur: 90 * simclock.Second, DurJitter: 0.1},
			{Name: "l2-puzzle", Clusters: []int{5}, MeanDur: 180 * simclock.Second, DurJitter: 0.25},
			{Name: "l2-brawl", Clusters: []int{2}, MeanDur: 220 * simclock.Second, DurJitter: 0.2},
			{Name: "l3-corridor", Clusters: []int{1}, MeanDur: 160 * simclock.Second, DurJitter: 0.2},
			// The "big secret realm": three elite fights in player order.
			{Name: "l3-elites", Clusters: []int{2, 3}, MeanDur: 240 * simclock.Second, DurJitter: 0.25},
			{Name: "l3-boss", Clusters: []int{3}, MeanDur: 200 * simclock.Second, DurJitter: 0.2},
			{Name: "l3-escape", Clusters: []int{1, 5}, MeanDur: 120 * simclock.Second, DurJitter: 0.2},
		},
		Scripts: []Script{
			{Name: "script 1", Desc: "first level in simple mode", Body: []int{1}},
			{Name: "script 2", Desc: "second level in simple mode", Body: []int{2, 3, 4}},
			{Name: "script 3", Desc: "third level in simple mode", Body: []int{5, 2, 6, 7, 8}},
		},
		BaseFPS:    60,
		FPSCap:     60,
		LoadMin:    15 * simclock.Second,
		LoadMax:    30 * simclock.Second,
		NominalLen: 30 * simclock.Minute,
		SpikeRate:  0.002,
	}
}

// Contra is the web-game representative: trivial stage structure, negligible
// user influence, low resource consumption.
func Contra() *GameSpec {
	return &GameSpec{
		Name:     "Contra",
		Category: Web,
		Clusters: []ClusterSpec{
			{Name: "loading", Demand: resources.New(28, 2, 4, 10), Jitter: 1.5},
			{Name: "run-and-gun", Demand: resources.New(16, 12, 8, 12), Jitter: 1.5},
		},
		StageTypes: []StageType{
			{Name: "loading", Clusters: []int{LoadingCluster}},
			{Name: "level", Clusters: []int{1}, MeanDur: 140 * simclock.Second, DurJitter: 0.1},
		},
		Scripts: []Script{
			{Name: "script 1", Desc: "first level", Body: []int{1}},
			{Name: "script 2", Desc: "first two levels", Body: []int{1, 1}},
			{Name: "script 3", Desc: "first three levels", Body: []int{1, 1, 1}},
		},
		BaseFPS:    60,
		LoadMin:    10 * simclock.Second,
		LoadMax:    12 * simclock.Second,
		NominalLen: 8 * simclock.Minute,
		SpikeRate:  0,
	}
}

// AllGames returns fresh specs for the full evaluated suite, in the paper's
// listing order.
func AllGames() []*GameSpec {
	return []*GameSpec{DOTA2(), CSGO(), GenshinImpact(), DevilMayCry(), Contra()}
}

// GameByName returns the spec with the given name, or an error listing the
// known games.
func GameByName(name string) (*GameSpec, error) {
	for _, g := range AllGames() {
		if g.Name == name {
			return g, nil
		}
	}
	return nil, fmt.Errorf("gamesim: unknown game %q (known: DOTA2, CSGO, Genshin Impact, Devil May Cry, Contra)", name)
}
