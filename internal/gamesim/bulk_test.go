package gamesim

import (
	"math/rand"
	"reflect"
	"testing"

	"cocg/internal/resources"
)

// normalized strips the fields that are deliberately allowed to differ
// between the bulk and per-second paths: the RNG pointer (compared
// separately), and the demand cache, which is semantically invisible while
// demandValid is false — the fast path never materializes a demand vector.
func normalized(s *Session) Session {
	c := *s
	c.rng = nil
	c.demand = resources.Zero
	c.demandValid = false
	return c
}

// requireSameState fails unless the two sessions are in bitwise-identical
// states, including the sequential RNG.
func requireSameState(t *testing.T, ref, bulk *Session, ctx string) {
	t.Helper()
	if ref.demandValid || bulk.demandValid {
		t.Fatalf("%s: demand cache left valid (ref=%v bulk=%v)", ctx, ref.demandValid, bulk.demandValid)
	}
	a, b := normalized(ref), normalized(bulk)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: state diverged:\nref:  %+v\nbulk: %+v", ctx, a, b)
	}
	if !reflect.DeepEqual(ref.rng, bulk.rng) {
		t.Fatalf("%s: RNG state diverged", ctx)
	}
}

// grantFor produces the chunk's grant under one of several adversarial
// patterns. The pattern RNG is shared by reference and bulk runs, so both
// see identical grants.
func grantFor(pattern int, s *Session, prng *rand.Rand) resources.Vector {
	switch pattern % 5 {
	case 0: // full supply: the pure fast path
		return resources.FullServer
	case 1: // exactly the envelope: the tightest certified grant
		return s.DemandEnvelope()
	case 2: // envelope minus epsilon on one dim: forces the Step fallback
		g := s.DemandEnvelope()
		g[prng.Intn(len(g))] -= 0.5
		return g
	case 3: // starvation: exercises stretched loading and zero progress
		return resources.Zero
	default: // random, including negative components
		var g resources.Vector
		for d := range g {
			g[d] = prng.Float64()*130 - 10
		}
		return g
	}
}

// TestStepBulkMatchesStep is the core equivalence property: StepBulk(g, n)
// leaves the session in the same bitwise state as n repeated Step(g) calls —
// across every game (spiky and not), every script, loading/segment/stage
// transitions, spike onsets, and contended and uncontended grants.
func TestStepBulkMatchesStep(t *testing.T) {
	for _, spec := range AllGames() {
		for script := range spec.Scripts {
			for seed := int64(1); seed <= 4; seed++ {
				ref, err := NewPlayerSession(spec, script, seed*11, seed)
				if err != nil {
					t.Fatal(err)
				}
				bulk, err := NewPlayerSession(spec, script, seed*11, seed)
				if err != nil {
					t.Fatal(err)
				}
				prng := rand.New(rand.NewSource(seed * 97))
				const maxSteps = 40_000
				steps := 0
				for chunk := 0; !ref.Done() && steps < maxSteps; chunk++ {
					g := grantFor(chunk, ref, prng)
					n := 1 + prng.Intn(137)
					for i := 0; i < n; i++ {
						ref.Step(g)
					}
					consumed := bulk.StepBulk(g, n)
					if consumed > n {
						t.Fatalf("%s script %d seed %d: consumed %d > n %d", spec.Name, script, seed, consumed, n)
					}
					if consumed < n && !bulk.Done() {
						t.Fatalf("%s script %d seed %d: short consume %d/%d on live session", spec.Name, script, seed, consumed, n)
					}
					steps += n
					requireSameState(t, ref, bulk, spec.Name)
				}
			}
		}
	}
}

// TestStepBulkCrossesSpikeOnset pins the trickiest boundary: a spike onset
// strictly inside a bulk window must fire with the same RNG draws, target,
// and duration as the per-second path.
func TestStepBulkCrossesSpikeOnset(t *testing.T) {
	spec := GenshinImpact()
	mk := func() *Session {
		s, err := NewSession(spec, 0, 42)
		if err != nil {
			t.Fatal(err)
		}
		// Advance into execution under full supply.
		for s.Phase() != PhaseExec {
			s.Step(resources.FullServer)
		}
		// Pin the onset a few seconds out so the window spans it.
		s.spikeCountdown = 3
		return s
	}
	ref, bulk := mk(), mk()
	for i := 0; i < 40; i++ {
		ref.Step(resources.FullServer)
	}
	bulk.StepBulk(resources.FullServer, 40)
	if ref.spikeLeft == 0 && ref.spikeCountdown > 1<<20 {
		t.Fatal("test setup: onset did not fire")
	}
	requireSameState(t, ref, bulk, "spike onset")
}

// TestStepBulkRunToCompletion drives whole sessions through StepBulk in one
// call and checks the terminal accounting matches the per-second run.
func TestStepBulkRunToCompletion(t *testing.T) {
	for _, spec := range AllGames() {
		ref, err := NewSession(spec, 0, 7)
		if err != nil {
			t.Fatal(err)
		}
		bulk, err := NewSession(spec, 0, 7)
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		for !ref.Done() && steps < 40_000 {
			ref.Step(resources.FullServer)
			steps++
		}
		if !ref.Done() {
			t.Fatalf("%s: reference did not complete", spec.Name)
		}
		consumed := bulk.StepBulk(resources.FullServer, steps+100)
		if consumed != steps {
			t.Errorf("%s: bulk consumed %d, reference took %d", spec.Name, consumed, steps)
		}
		requireSameState(t, ref, bulk, spec.Name)
	}
}

// FuzzStepBulkEquivalence fuzzes the equivalence over seeds and chunk
// layouts; the checked property is identical to TestStepBulkMatchesStep.
func FuzzStepBulkEquivalence(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(0))
	f.Add(int64(99), int64(5), uint8(2))
	f.Add(int64(-7), int64(1234), uint8(4))
	games := AllGames()
	f.Fuzz(func(t *testing.T, habit, seed int64, gameIdx uint8) {
		spec := games[int(gameIdx)%len(games)]
		ref, err := NewPlayerSession(spec, 0, habit, seed)
		if err != nil {
			t.Skip()
		}
		bulk, _ := NewPlayerSession(spec, 0, habit, seed)
		prng := rand.New(rand.NewSource(seed ^ habit))
		steps := 0
		for chunk := 0; !ref.Done() && steps < 20_000; chunk++ {
			g := grantFor(chunk, ref, prng)
			n := 1 + prng.Intn(211)
			for i := 0; i < n; i++ {
				ref.Step(g)
			}
			bulk.StepBulk(g, n)
			steps += n
			requireSameState(t, ref, bulk, spec.Name)
		}
	})
}
