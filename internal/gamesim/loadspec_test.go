package gamesim

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpecRoundTrip(t *testing.T) {
	for _, spec := range AllGames() {
		var buf bytes.Buffer
		if err := SaveSpec(spec, &buf); err != nil {
			t.Fatalf("%s: save: %v", spec.Name, err)
		}
		back, err := LoadSpec(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", spec.Name, err)
		}
		if back.Name != spec.Name || back.Category != spec.Category {
			t.Errorf("%s: identity changed", spec.Name)
		}
		if len(back.Clusters) != len(spec.Clusters) ||
			len(back.StageTypes) != len(spec.StageTypes) ||
			len(back.Scripts) != len(spec.Scripts) {
			t.Errorf("%s: structure changed", spec.Name)
		}
		if back.EffectiveFPS() != spec.EffectiveFPS() {
			t.Errorf("%s: FPS changed", spec.Name)
		}
		// A session of the loaded spec runs.
		s, err := NewSession(back, 0, 5)
		if err != nil {
			t.Fatalf("%s: session: %v", spec.Name, err)
		}
		for i := 0; i < 100; i++ {
			s.Step(s.Demand())
		}
	}
}

const customSpec = `{
  "name": "My Racing Game",
  "category": "console",
  "clusters": [
    {"name": "loading", "demand": [45, 4, 10, 25], "jitter": 2},
    {"name": "menu", "demand": [15, 18, 12, 22], "jitter": 2},
    {"name": "race", "demand": [50, 62, 40, 40], "jitter": 4}
  ],
  "stages": [
    {"name": "loading", "clusters": [0]},
    {"name": "menu", "clusters": [1], "mean_sec": 60, "dur_jitter": 0.2},
    {"name": "race", "clusters": [2], "mean_sec": 240, "dur_jitter": 0.15}
  ],
  "scripts": [
    {"name": "grand prix", "desc": "menu then two races", "body": [1, 2, 2]}
  ],
  "base_fps": 60,
  "fps_cap": 60,
  "load_min_sec": 10,
  "load_max_sec": 18,
  "nominal_len_sec": 900
}`

func TestLoadCustomSpec(t *testing.T) {
	spec, err := LoadSpec(strings.NewReader(customSpec))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "My Racing Game" || spec.Category != Console {
		t.Errorf("loaded: %s %v", spec.Name, spec.Category)
	}
	if got := spec.ScriptStageTypeCount(0); got != 3 {
		t.Errorf("stage types = %d, want 3", got)
	}
	tr, err := Record(spec, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Frames) == 0 {
		t.Error("custom game produced no trace")
	}
}

func TestLoadSpecRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json":        "nope",
		"unknown field":   `{"name":"x","bogus":1}`,
		"bad category":    strings.Replace(customSpec, `"console"`, `"arcade"`, 1),
		"loading renders": strings.Replace(customSpec, `[45, 4, 10, 25]`, `[45, 40, 10, 25]`, 1),
		"short loads":     strings.Replace(customSpec, `"load_min_sec": 10`, `"load_min_sec": 1`, 1),
		"no scripts":      strings.Replace(customSpec, `{"name": "grand prix", "desc": "menu then two races", "body": [1, 2, 2]}`, ``, 1),
	}
	for name, doc := range cases {
		if _, err := LoadSpec(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: loaded", name)
		}
	}
}

func TestSaveSpecRejectsInvalid(t *testing.T) {
	bad := Contra()
	bad.Scripts = nil
	var buf bytes.Buffer
	if err := SaveSpec(bad, &buf); err == nil {
		t.Error("invalid spec saved")
	}
}
