package gamesim

import (
	"math"

	"cocg/internal/resources"
)

// Event-driven bulk advancement.
//
// A session whose grant covers its worst-case demand envelope has a provably
// degenerate per-second step: satisfaction is exactly 1.0, frames render at
// the spec's effective rate, and progress counters decrement by exactly 1.0.
// StepBulk exploits that to advance many seconds with a handful of scalar
// operations each, while remaining bitwise-identical to the same number of
// Step calls — including the sequential-RNG draw order at loading, stage, and
// spike events. The per-second demand jitter never needs to be evaluated on
// the fast path because it is stateless (noise.go) and cannot change the
// outcome once the envelope is covered.

// spikeBoostBound is the componentwise supremum of the burst boost a spike
// onset can apply (spikeAdvance draws boost < 30 and shapes it by these
// weights).
var spikeBoostBound = resources.New(30*0.8, 30, 30*0.5, 30*0.3)

// DemandEnvelope returns a componentwise worst-case bound on every demand
// vector the session can present from now until its next stage, segment, or
// loading transition (spike onsets and ends are covered by the bound and do
// not invalidate it). The bound is sound because demand jitter is hard-capped
// at ±noiseBound standard deviations and float arithmetic is monotone.
func (s *Session) DemandEnvelope() resources.Vector {
	if s.phase == PhaseDone {
		return resources.Zero
	}
	c := &s.Spec.Clusters[s.curCluster]
	wc := c.Demand
	if s.phase == PhaseExec && s.Spec.SpikeRate > 0 {
		// A burst pushes demand up by at most spikeBoostBound; a dip drops to
		// the loading cluster's level (which can exceed the execution base on
		// CPU). An already-active spike may carry a target drawn in an earlier
		// segment, so it is folded in explicitly.
		burst := c.Demand.Add(spikeBoostBound).Clamp(0, 100)
		wc = wc.Max(burst).Max(s.Spec.Clusters[LoadingCluster].Demand)
		if s.spikeLeft > 0 {
			wc = wc.Max(s.spikeTarget)
		}
	}
	for d := range wc {
		wc[d] += noiseBound * c.Jitter
	}
	return wc.Clamp(0, 100)
}

// WorstCaseDemand returns a componentwise bound on every demand vector any
// session of this spec can ever present — DemandEnvelope maximized over all
// clusters and spike states, with the spec's largest jitter. A controller
// whose steady request dominates it keeps its session on the bulk fast path
// in every phase.
func (g *GameSpec) WorstCaseDemand() resources.Vector {
	var wc resources.Vector
	var maxJ float64
	for ci := range g.Clusters {
		c := &g.Clusters[ci]
		v := c.Demand
		if g.SpikeRate > 0 {
			v = v.Add(spikeBoostBound).Clamp(0, 100)
		}
		wc = wc.Max(v)
		if c.Jitter > maxJ {
			maxJ = c.Jitter
		}
	}
	for d := range wc {
		wc[d] += noiseBound * maxJ
	}
	return wc.Clamp(0, 100)
}

// BulkHorizon returns how many upcoming full-supply seconds the current
// DemandEnvelope is guaranteed to cover, including the second on which the
// next transition fires. Zero means the session is done. The count is exact,
// not approximate: under satisfaction 1.0 the remaining-work floats decrement
// by exactly 1.0 per second (downward unit steps of a positive double are
// exact), so the transition second is ceil() of the remaining work.
func (s *Session) BulkHorizon() int {
	switch s.phase {
	case PhaseDone:
		return 0
	case PhaseLoading:
		return ceilSeconds(s.loadLeft)
	default:
		rem := s.execRemaining
		if s.segmentLeft < rem {
			rem = s.segmentLeft
		}
		return ceilSeconds(rem)
	}
}

// ceilSeconds converts remaining work into a whole-second event bound, at
// least 1.
func ceilSeconds(x float64) int {
	n := int(math.Ceil(x))
	if n < 1 {
		n = 1
	}
	return n
}

// StepBulk advances the session by up to n seconds under the fixed grant,
// bitwise-identical to calling Step(granted) n times. Seconds whose grant
// covers the demand envelope run on an allocation-free fast path that skips
// demand evaluation entirely; contended seconds (and any second the envelope
// cannot certify) fall back to the full Step. Returns the seconds consumed,
// which is n unless the session completes first.
//
//cocg:hot
func (s *Session) StepBulk(granted resources.Vector, n int) int {
	g := granted.ClampNonNegative()
	consumed := 0
	for consumed < n {
		if s.phase == PhaseDone {
			// Step on a done session is a no-op (it never touches the RNG),
			// so the remaining seconds can be dropped outright.
			break
		}
		if !s.envelopeCovered(g) {
			s.Step(granted)
			consumed++
			continue
		}
		k := n - consumed
		if h := s.BulkHorizon(); h < k {
			k = h
		}
		consumed += s.fastRun(k)
	}
	return consumed
}

// envelopeCovered reports whether the (non-negative) grant dominates the
// current demand envelope — the certificate that satisfaction will be exactly
// 1.0 without looking at a single jitter draw.
func (s *Session) envelopeCovered(g resources.Vector) bool {
	wc := s.DemandEnvelope()
	for d := range wc {
		if g[d] < wc[d] {
			return false
		}
	}
	return true
}

// fastRun advances up to k seconds of the sat == 1.0 specialization of Step,
// stopping after the second that fires a stage, segment, or loading
// transition (the envelope must be re-derived there). Returns the seconds
// actually run. Callers must have certified the envelope for all k seconds.
//
//cocg:hot
func (s *Session) fastRun(k int) int {
	switch s.phase {
	case PhaseLoading:
		for i := 0; i < k; i++ {
			s.elapsed++
			s.loadSeconds++
			// Step with cpuSat == 1.0: loadLeft -= 1.0 and loadExtended += 0,
			// the latter a bitwise no-op on a non-negative accumulator.
			s.loadLeft -= 1.0
			s.lastFPS = 0
			s.lastSat = 1
			if s.loadLeft <= 0 {
				s.finishLoading()
				return i + 1
			}
		}
		return k
	case PhaseExec:
		// With sat == 1.0 the frame rate is the spec's effective FPS exactly
		// (x * 1.0 is bitwise x), so the histogram bucket and QoS predicates
		// are loop invariants.
		fps := s.Spec.EffectiveFPS()
		bucket := int(fps / 4)
		if bucket > fpsBuckets {
			bucket = fpsBuckets
		}
		good := fps >= 30
		spiky := s.Spec.SpikeRate > 0
		for i := 0; i < k; i++ {
			s.elapsed++
			if spiky {
				// Demand()'s spike bookkeeping, in draw order: onset decisions
				// precede Step's spike-duration countdown.
				s.spikeAdvance()
			}
			s.execSeconds++
			if s.spikeLeft > 0 {
				s.spikeLeft--
			}
			s.lastFPS = fps
			s.lastSat = 1
			s.fpsSum += fps
			s.fpsHist[bucket]++
			if good {
				s.goodFPS++
			}
			s.execRemaining -= 1.0
			s.segmentLeft -= 1.0
			if s.execRemaining <= 0 {
				s.enterNextLoading()
				return i + 1
			} else if s.segmentLeft <= 0 {
				s.advanceSegment()
				return i + 1
			}
		}
		return k
	default:
		return k
	}
}
