package gamesim

import (
	"testing"
	"testing/quick"

	"cocg/internal/resources"
)

// runToCompletion steps a session at full supply and returns tick count.
func runToCompletion(t *testing.T, s *Session) int {
	t.Helper()
	for i := 0; i < 4*3600; i++ {
		if s.Done() {
			return i
		}
		s.Step(resources.FullServer)
	}
	t.Fatal("session did not complete within 4 simulated hours")
	return 0
}

func TestSessionLifecycle(t *testing.T) {
	s, err := NewSession(Contra(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Phase() != PhaseLoading {
		t.Fatalf("new session phase = %v", s.Phase())
	}
	runToCompletion(t, s)
	if !s.Done() || s.Phase() != PhaseDone {
		t.Error("session not done after completion")
	}
	if s.ExecSeconds() == 0 || s.LoadSeconds() == 0 {
		t.Errorf("exec=%d load=%d, both must be positive", s.ExecSeconds(), s.LoadSeconds())
	}
	if s.Elapsed() != s.ExecSeconds()+s.LoadSeconds() {
		t.Errorf("elapsed %d != exec %d + load %d", s.Elapsed(), s.ExecSeconds(), s.LoadSeconds())
	}
}

func TestSessionInvalidArgs(t *testing.T) {
	if _, err := NewSession(Contra(), 5, 1); err == nil {
		t.Error("out-of-range script did not error")
	}
	bad := Contra()
	bad.Scripts = nil
	if _, err := NewSession(bad, 0, 1); err == nil {
		t.Error("invalid spec did not error")
	}
}

func TestSessionDeterministicForSeed(t *testing.T) {
	a, _ := NewSession(GenshinImpact(), 0, 42)
	b, _ := NewSession(GenshinImpact(), 0, 42)
	for i := 0; i < 2000 && !a.Done(); i++ {
		da, db := a.Demand(), b.Demand()
		if da != db {
			t.Fatalf("tick %d: demands differ: %v vs %v", i, da, db)
		}
		a.Step(resources.FullServer)
		b.Step(resources.FullServer)
	}
}

func TestDemandStableWithinTick(t *testing.T) {
	s, _ := NewSession(CSGO(), 0, 3)
	for i := 0; i < 100; i++ {
		d1 := s.Demand()
		d2 := s.Demand()
		if d1 != d2 {
			t.Fatalf("tick %d: Demand not stable: %v vs %v", i, d1, d2)
		}
		s.Step(resources.FullServer)
	}
}

func TestFullSupplyMeansFullFPS(t *testing.T) {
	s, _ := NewSession(DevilMayCry(), 0, 7)
	runToCompletion(t, s)
	if r := s.FPSRatio(); r < 0.999 {
		t.Errorf("FPSRatio at full supply = %v, want ~1", r)
	}
	if f := s.GoodFPSFraction(); f < 0.999 {
		t.Errorf("GoodFPSFraction at full supply = %v", f)
	}
	if d := s.DegradedFraction(); d > 0.001 {
		t.Errorf("DegradedFraction at full supply = %v", d)
	}
	if s.LoadExtended() > 0.001 {
		t.Errorf("LoadExtended at full supply = %v", s.LoadExtended())
	}
}

func TestThrottlingDropsFPS(t *testing.T) {
	full, _ := NewSession(CSGO(), 0, 9)
	runToCompletion(t, full)
	half, _ := NewSession(CSGO(), 0, 9)
	for i := 0; i < 4*3600 && !half.Done(); i++ {
		half.Step(half.Demand().Scale(0.5))
	}
	if !half.Done() {
		t.Fatal("throttled session did not finish")
	}
	if half.AvgFPS() >= full.AvgFPS()*0.6 {
		t.Errorf("half supply FPS %v not clearly below full %v", half.AvgFPS(), full.AvgFPS())
	}
	if half.DegradedFraction() < 0.9 {
		t.Errorf("half supply DegradedFraction = %v, want ~1", half.DegradedFraction())
	}
}

func TestThrottledLoadingExtends(t *testing.T) {
	// Observation 4: reducing loading supply stretches loading time without
	// touching execution time.
	full, _ := NewSession(DevilMayCry(), 0, 11)
	runToCompletion(t, full)

	steal, _ := NewSession(DevilMayCry(), 0, 11)
	for i := 0; i < 4*3600 && !steal.Done(); i++ {
		grant := steal.Demand()
		if steal.Phase() == PhaseLoading {
			grant = grant.Scale(0.5)
		}
		steal.Step(grant)
	}
	if !steal.Done() {
		t.Fatal("stolen session did not finish")
	}
	if steal.LoadSeconds() <= full.LoadSeconds() {
		t.Errorf("throttled loading %d not longer than full-supply loading %d",
			steal.LoadSeconds(), full.LoadSeconds())
	}
	if steal.LoadExtended() <= 0 {
		t.Error("LoadExtended not recorded")
	}
	// Execution QoS must be untouched: stealing only affects loading.
	if steal.FPSRatio() < 0.999 {
		t.Errorf("loading throttle hurt exec FPS: ratio %v", steal.FPSRatio())
	}
}

func TestLoadingDemandShape(t *testing.T) {
	s, _ := NewSession(DOTA2(), 0, 13)
	// The session starts in loading; its demand must be CPU-heavy, GPU-light.
	d := s.Demand()
	if d[resources.GPU] > 15 {
		t.Errorf("loading GPU demand = %v", d[resources.GPU])
	}
	if d[resources.CPU] < 30 {
		t.Errorf("loading CPU demand = %v", d[resources.CPU])
	}
}

func TestPlanTypesMatchScriptTypes(t *testing.T) {
	for _, g := range AllGames() {
		for si := range g.Scripts {
			s, err := NewSession(g, si, 17)
			if err != nil {
				t.Fatal(err)
			}
			allowed := map[int]bool{}
			for _, tt := range g.Scripts[si].Body {
				allowed[tt] = true
			}
			for _, tt := range s.PlanTypes() {
				if !allowed[tt] {
					t.Errorf("%s script %d plan contains foreign stage type %d", g.Name, si, tt)
				}
			}
		}
	}
}

func TestWebGamesPlanIsExactlyScript(t *testing.T) {
	// Web games have negligible user influence: the realized plan must keep
	// the script's nominal order and length.
	g := Contra()
	for seed := int64(0); seed < 20; seed++ {
		s, _ := NewSession(g, 2, seed)
		got := s.PlanTypes()
		if len(got) != 3 {
			t.Fatalf("seed %d: plan length %d, want 3", seed, len(got))
		}
	}
}

func TestMobilePlansVaryAcrossPlayers(t *testing.T) {
	g := GenshinImpact()
	distinct := map[string]bool{}
	for seed := int64(0); seed < 40; seed++ {
		s, _ := NewSession(g, 0, seed)
		key := ""
		for _, tt := range s.PlanTypes() {
			key += string(rune('0' + tt))
		}
		distinct[key] = true
	}
	if len(distinct) < 2 {
		t.Error("mobile plans identical across players; user influence missing")
	}
}

func TestStageTypeGroundTruth(t *testing.T) {
	s, _ := NewSession(Contra(), 0, 19)
	sawLoading, sawExec := false, false
	for i := 0; i < 4*3600 && !s.Done(); i++ {
		switch s.Phase() {
		case PhaseLoading:
			sawLoading = true
			if s.StageType() != LoadingType {
				t.Fatal("loading phase reports non-loading stage type")
			}
		case PhaseExec:
			sawExec = true
			if s.StageType() == LoadingType {
				t.Fatal("exec phase reports loading stage type")
			}
		}
		s.Step(resources.FullServer)
	}
	if !sawLoading || !sawExec {
		t.Error("session skipped a phase")
	}
}

func TestDoneSessionIsInert(t *testing.T) {
	s, _ := NewSession(Contra(), 0, 23)
	runToCompletion(t, s)
	e := s.Elapsed()
	s.Step(resources.FullServer)
	if s.Elapsed() != e {
		t.Error("Step advanced a done session")
	}
	if !s.Demand().IsZero() {
		t.Error("done session still demands resources")
	}
}

func TestPropertyDemandInRange(t *testing.T) {
	f := func(seed int64, scriptRaw uint8) bool {
		g := AllGames()[int(uint64(seed)%5)]
		si := int(scriptRaw) % len(g.Scripts)
		s, err := NewSession(g, si, seed)
		if err != nil {
			return false
		}
		for i := 0; i < 500 && !s.Done(); i++ {
			d := s.Demand()
			for dim := range d {
				if d[dim] < 0 || d[dim] > 100 {
					return false
				}
			}
			s.Step(resources.FullServer)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertySessionsAlwaysTerminate(t *testing.T) {
	f := func(seed int64, scriptRaw uint8) bool {
		g := AllGames()[int((uint64(seed)>>3)%5)]
		si := int(scriptRaw) % len(g.Scripts)
		s, err := NewSession(g, si, seed)
		if err != nil {
			return false
		}
		for i := 0; i < 4*3600; i++ {
			if s.Done() {
				return true
			}
			s.Step(resources.FullServer)
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseLoading.String() != "loading" || PhaseExec.String() != "exec" || PhaseDone.String() != "done" {
		t.Error("phase names wrong")
	}
	if Phase(9).String() != "phase(9)" {
		t.Error("unknown phase string wrong")
	}
}

func TestFPSPercentiles(t *testing.T) {
	s, _ := NewSession(CSGO(), 0, 77)
	// Run the first two minutes at full supply, the rest throttled to 50 %.
	i := 0
	for ; i < 120 && !s.Done(); i++ {
		s.Step(resources.FullServer)
	}
	for ; i < 4*3600 && !s.Done(); i++ {
		s.Step(s.Demand().Scale(0.5))
	}
	if s.ExecSeconds() == 0 {
		t.Fatal("no exec time")
	}
	p5 := s.FPSPercentile(5)
	p95 := s.FPSPercentile(95)
	if p5 > p95 {
		t.Errorf("p5 %.0f above p95 %.0f", p5, p95)
	}
	if p95 < 100 {
		t.Errorf("p95 %.0f too low for an uncapped 200 FPS game at full supply", p95)
	}
	if p5 > 150 {
		t.Errorf("p5 %.0f does not reflect the throttled half", p5)
	}
	// Percentiles of a fresh session are zero.
	fresh, _ := NewSession(CSGO(), 0, 78)
	if fresh.FPSPercentile(50) != 0 {
		t.Error("fresh session percentile not zero")
	}
}

func TestHabitStableAcrossSessions(t *testing.T) {
	// The same mobile player keeps (mostly) the same task order across
	// sessions; different players differ. This is the structure per-player
	// training sets exploit.
	g := GenshinImpact()
	planKey := func(habit, session int64) string {
		s, err := NewPlayerSession(g, 0, habit, session)
		if err != nil {
			t.Fatal(err)
		}
		key := ""
		for _, tt := range s.PlanTypes() {
			key += string(rune('0' + tt))
		}
		return key
	}
	same, diff := 0, 0
	for habit := int64(100); habit < 110; habit++ {
		base := planKey(habit, 1)
		for sess := int64(2); sess < 8; sess++ {
			if planKey(habit, sess) == base {
				same++
			} else {
				diff++
			}
		}
	}
	if frac := float64(same) / float64(same+diff); frac < 0.6 {
		t.Errorf("habit plans stable only %.0f%% of sessions", 100*frac)
	}
	distinct := map[string]bool{}
	for habit := int64(100); habit < 110; habit++ {
		distinct[planKey(habit, 1)] = true
	}
	if len(distinct) < 2 {
		t.Error("all players share one habit")
	}
}

func TestPropertyPlanAlternatesLoadingAndExec(t *testing.T) {
	// Running any session to completion at full supply must alternate
	// loading and execution phases strictly (no exec-to-exec jumps without
	// a loading stage between plan entries).
	f := func(seed int64) bool {
		g := AllGames()[int(uint64(seed)%5)]
		s, err := NewSession(g, int(uint64(seed)>>8)%len(g.Scripts), seed)
		if err != nil {
			return false
		}
		prev := s.Phase()
		transitions := 0
		for i := 0; i < 4*3600 && !s.Done(); i++ {
			s.Step(resources.FullServer)
			cur := s.Phase()
			if cur != prev && cur != PhaseDone {
				transitions++
				// A phase change must flip loading <-> exec.
				if (prev == PhaseLoading) == (cur == PhaseLoading) {
					return false
				}
			}
			prev = cur
		}
		return transitions >= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
