package gamesim

import (
	"fmt"
	"math"
	"math/rand"

	"cocg/internal/resources"
	"cocg/internal/simclock"
)

// lagThreshold is the demand-satisfaction level below which gameplay itself
// slows down (missed inputs, stalled game logic) in addition to dropping
// frames.
const lagThreshold = 0.8

// Phase is the coarse run-time state of a session.
type Phase int

// Session phases. Loading covers initialization, runtime loading, and
// shutdown (Section IV-A1); Exec is normal player interaction.
const (
	PhaseLoading Phase = iota
	PhaseExec
	PhaseDone
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseLoading:
		return "loading"
	case PhaseExec:
		return "exec"
	case PhaseDone:
		return "done"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// plannedStage is one execution stage of a session's realized plan.
type plannedStage struct {
	stageType    int
	duration     simclock.Seconds // at full resource supply
	clusterOrder []int            // realized visiting order of the stage's clusters
}

// Session is one running game instance: a realized stage plan advanced one
// virtual second at a time. The platform asks for its Demand, decides a
// grant, and calls Step; the session reacts exactly as the paper's games do —
// execution stages drop frames when under-provisioned, loading stages
// stretch (Observation 4: loading progress is compute-bound, so reducing its
// supply "steals time" without harming interaction).
type Session struct {
	Spec      *GameSpec
	ScriptIdx int
	PlayerID  int64

	rng *rand.Rand
	// noiseSeed keys the stateless per-second demand jitter (see noise.go);
	// it is drawn once from the sequential RNG at construction.
	noiseSeed uint64
	plan      []plannedStage
	planIdx   int // next plan entry to execute once the current loading ends
	phase     Phase

	// Loading state: work is measured in full-supply seconds and counts down
	// so the remaining-work float stays exact under full supply (subtracting
	// 1.0 from a positive double is always exact; adding 1.0 toward a target
	// is not), which is what makes loading-completion events predictable.
	loadLeft     float64
	shutdownLoad bool // true when the current loading is the final shutdown

	// Execution state.
	execRemaining float64
	curStage      int
	curCluster    int
	segmentIdx    int     // which cluster segment of the current stage
	segmentLeft   float64 // seconds left in the current cluster segment
	segmentLen    float64

	// Transient event that is not a stage change (exercises the predictor's
	// rehearsal callback): a burst pushes demand toward a hotter cluster's
	// level, a dip briefly drops to loading-like demand (e.g. the player
	// opens a menu). Onsets follow a geometric countdown over eligible
	// execution seconds (drawn at construction and at each onset), so the
	// next onset second is known in advance instead of being a fresh
	// Bernoulli draw every second.
	spikeLeft      int
	spikeCountdown int
	spikeTarget    resources.Vector

	// Tick demand cache so Demand() and Step() agree within one tick.
	demandValid bool
	demand      resources.Vector

	// Accounting.
	elapsed      simclock.Seconds
	execSeconds  simclock.Seconds
	loadSeconds  simclock.Seconds
	loadExtended float64 // extra loading seconds caused by throttling
	fpsSum       float64
	goodFPS      int // exec seconds with FPS >= 30
	degraded     int // exec seconds with satisfaction < 0.95
	lastFPS      float64
	lastSat      float64
	// fpsHist buckets execution-second frame rates in 4 FPS steps (the
	// last bucket absorbs everything above 240), enabling percentile QoS
	// reporting without retaining the full series.
	fpsHist [fpsBuckets + 1]int
}

// fpsBuckets is the number of 4-FPS histogram buckets below the overflow.
const fpsBuckets = 60

// NewSession realizes a session of the given script for one player. The seed
// determines every player-dependent choice (stage order, durations, cluster
// order, spikes), so identical seeds replay identical sessions.
func NewSession(spec *GameSpec, scriptIdx int, seed int64) (*Session, error) {
	return NewPlayerSession(spec, scriptIdx, seed, seed)
}

// NewPlayerSession realizes a session with the player-habit model split out:
// habitSeed drives the player's stable choices (the order in which they take
// on the script's tasks — the habit the paper's per-player training sets
// capture), while sessionSeed drives everything that varies between two
// sessions of the same player (durations, demand noise, spikes, and
// occasional deviations from habit).
func NewPlayerSession(spec *GameSpec, scriptIdx int, habitSeed, sessionSeed int64) (*Session, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if scriptIdx < 0 || scriptIdx >= len(spec.Scripts) {
		return nil, fmt.Errorf("gamesim: %s has no script %d", spec.Name, scriptIdx)
	}
	s := &Session{
		Spec:      spec,
		ScriptIdx: scriptIdx,
		PlayerID:  habitSeed,
		rng:       rand.New(rand.NewSource(sessionSeed)),
		phase:     PhaseLoading,
		curStage:  LoadingType,
	}
	habit := rand.New(rand.NewSource(habitSeed))
	s.plan = s.realizePlan(spec.Scripts[scriptIdx].Body, habit)
	s.loadLeft = s.drawLoad(1)
	s.noiseSeed = s.rng.Uint64()
	if spec.SpikeRate > 0 {
		s.spikeCountdown = s.drawSpikeGap()
	}
	s.curCluster = LoadingCluster
	return s, nil
}

// realizePlan applies the category's user-influence model to the script's
// nominal body: habitual reordering and repeats (habit RNG), session-level
// deviations from habit, duration draws, and per-stage cluster visiting
// orders (session RNG).
func (s *Session) realizePlan(body []int, habit *rand.Rand) []plannedStage {
	ui := s.Spec.Category.UserInfluence()
	order := append([]int(nil), body...)

	switch s.Spec.Category {
	case Mobile:
		// Players habitually reorder their daily tasks: adjacent swaps after
		// the first entry (the login menu always comes first)...
		for i := 1; i < len(order)-1; i++ {
			if habit.Float64() < 0.35 {
				order[i], order[i+1] = order[i+1], order[i]
			}
		}
		// ...and occasionally deviate from their own habit within a session.
		for i := 1; i < len(order)-1; i++ {
			if s.rng.Float64() < 0.08 {
				order[i], order[i+1] = order[i+1], order[i]
			}
		}
	case MMORPG:
		// Matches repeat their mid-game stages an unpredictable number of
		// times and occasionally swap adjacent phases. The repeat pattern is
		// driven by the habit RNG — players who queue together (a cohort in
		// the corpus generator) share it — with per-session swaps on top.
		var expanded []int
		for _, t := range order {
			expanded = append(expanded, t)
			for habit.Float64() < 0.4*ui {
				expanded = append(expanded, t)
			}
		}
		order = expanded
		for i := 0; i < len(order)-1; i++ {
			if order[i] != order[i+1] && s.rng.Float64() < 0.08 {
				order[i], order[i+1] = order[i+1], order[i]
			}
		}
	}

	plan := make([]plannedStage, 0, len(order))
	for _, t := range order {
		st := s.Spec.StageTypes[t]
		spread := st.DurJitter * (0.5 + ui)
		factor := math.Exp(s.rng.NormFloat64() * spread)
		dur := simclock.Seconds(math.Max(10, float64(st.MeanDur)*factor))
		co := append([]int(nil), st.Clusters...)
		s.rng.Shuffle(len(co), func(i, j int) { co[i], co[j] = co[j], co[i] })
		plan = append(plan, plannedStage{stageType: t, duration: dur, clusterOrder: co})
	}
	return plan
}

// drawLoad draws one loading duration in full-supply seconds, scaled (the
// shutdown load uses scale 0.5).
func (s *Session) drawLoad(scale float64) float64 {
	span := float64(s.Spec.LoadMax - s.Spec.LoadMin)
	return scale * (float64(s.Spec.LoadMin) + s.rng.Float64()*span)
}

// Phase returns the session's coarse state.
func (s *Session) Phase() Phase { return s.phase }

// Done reports whether the session has finished (including shutdown).
func (s *Session) Done() bool { return s.phase == PhaseDone }

// StageType returns the ground-truth stage type the session is in: the
// loading type while loading, otherwise the current execution stage type.
// Schedulers must not use it directly — they observe only resource vectors —
// but experiments use it to score detection and prediction.
func (s *Session) StageType() int {
	if s.phase == PhaseLoading {
		return LoadingType
	}
	return s.curStage
}

// Cluster returns the ground-truth frame cluster currently active.
func (s *Session) Cluster() int { return s.curCluster }

// PlanTypes returns the realized sequence of execution stage types, in order.
func (s *Session) PlanTypes() []int {
	out := make([]int, len(s.plan))
	for i, p := range s.plan {
		out[i] = p.stageType
	}
	return out
}

// Demand returns the resource demand for the current tick. It is stable
// within a tick: repeated calls before Step return the same vector.
func (s *Session) Demand() resources.Vector {
	if s.demandValid {
		return s.demand
	}
	var d resources.Vector
	switch s.phase {
	case PhaseDone:
		d = resources.Zero
	default:
		c := s.Spec.Clusters[s.curCluster]
		base := c.Demand
		if s.phase == PhaseExec {
			s.spikeAdvance()
			if s.spikeLeft > 0 {
				base = s.spikeTarget
			}
		}
		d = base
		for dim := range d {
			d[dim] += demandNoise(s.noiseSeed, int64(s.elapsed), dim) * c.Jitter
		}
		d = d.Clamp(0, 100)
	}
	s.demand = d
	s.demandValid = true
	return d
}

// drawSpikeGap draws the number of eligible (non-spiking) execution seconds
// before the next spike onset: geometric with the spec's per-second onset
// rate, so the distribution of onsets matches a per-second Bernoulli draw
// while the onset time itself is decided ahead of the seconds it spans.
func (s *Session) drawSpikeGap() int {
	p := s.Spec.SpikeRate
	if p >= 1 {
		return 0
	}
	k := math.Log1p(-s.rng.Float64()) / math.Log1p(-p)
	if !(k < 1<<30) { // NaN/Inf guard for u ~ 1
		return 1 << 30
	}
	return int(k)
}

// spikeAdvance starts a short demand anomaly that is not a stage change: a
// burst toward a hotter cluster's consumption level (a sudden on-screen
// event) or a dip to loading-like demand (the player idles in a menu). Both
// can fool a naive detector into believing a stage switch — exactly the
// misjudgments Fig. 9 (period three) and Fig. 10 (the three brief jumps)
// show the rehearsal callback correcting. Called once per execution-second
// demand evaluation; each eligible second ticks the geometric onset countdown
// down, and the onset itself draws the spike's shape plus the next countdown.
func (s *Session) spikeAdvance() {
	if s.spikeLeft > 0 || s.Spec.SpikeRate <= 0 {
		return
	}
	if s.spikeCountdown > 0 {
		s.spikeCountdown--
		return
	}
	if s.rng.Float64() < 0.6 {
		// Burst: push demand up by 15-30 points, resembling a hotter cluster.
		s.spikeLeft = 8 + s.rng.Intn(8)
		boost := 15 + s.rng.Float64()*15
		s.spikeTarget = s.Spec.Clusters[s.curCluster].Demand.
			Add(resources.New(boost*0.8, boost, boost*0.5, boost*0.3)).Clamp(0, 100)
	} else {
		// Dip: loading-like demand for 3-5 seconds — shorter than any real
		// loading stage (which always spans two detection frames), but long
		// enough to sometimes dominate one frame and fool the separator.
		s.spikeLeft = 3 + s.rng.Intn(3)
		s.spikeTarget = s.Spec.Clusters[LoadingCluster].Demand
	}
	s.spikeCountdown = s.drawSpikeGap()
}

// Step advances the session by one virtual second under the given grant.
// Execution stages always consume wall-clock time (an under-provisioned game
// drops frames, it does not pause), while loading progress scales with the
// satisfied fraction of the CPU demand, so throttled loading takes longer.
func (s *Session) Step(granted resources.Vector) {
	demand := s.Demand() // ensure the tick's demand is realized
	s.demandValid = false
	if s.phase == PhaseDone {
		return
	}
	s.elapsed++
	sat := math.Min(1, granted.ClampNonNegative().MinRatio(demand))
	s.lastSat = sat

	switch s.phase {
	case PhaseLoading:
		s.loadSeconds++
		// Loading is CPU-bound: progress is the satisfied CPU fraction.
		cpuSat := 1.0
		if demand[resources.CPU] > 0 {
			cpuSat = math.Min(1, granted[resources.CPU]/demand[resources.CPU])
			cpuSat = math.Max(0, cpuSat)
		}
		s.loadLeft -= cpuSat
		s.loadExtended += 1 - cpuSat
		s.lastFPS = 0
		if s.loadLeft <= 0 {
			s.finishLoading()
		}
	case PhaseExec:
		s.execSeconds++
		if s.spikeLeft > 0 {
			s.spikeLeft--
		}
		fps := s.Spec.EffectiveFPS() * sat
		s.lastFPS = fps
		s.fpsSum += fps
		bucket := int(fps / 4)
		if bucket > fpsBuckets {
			bucket = fpsBuckets
		}
		s.fpsHist[bucket]++
		if fps >= 30 {
			s.goodFPS++
		}
		if sat < 0.95 {
			s.degraded++
		}
		// Gameplay progress: mild throttling only drops frames, but severe
		// lag (under 80 % satisfaction) also slows the player and the game
		// logic down, stretching the stage in wall-clock time — and the
		// effect compounds as the frame rate collapses.
		progress := 1.0
		if sat < lagThreshold {
			r := sat / lagThreshold
			progress = r * r
		}
		s.execRemaining -= progress
		s.segmentLeft -= progress
		if s.execRemaining <= 0 {
			s.enterNextLoading()
		} else if s.segmentLeft <= 0 {
			s.advanceSegment()
		}
	}
}

// finishLoading transitions from a completed loading stage into the next
// planned execution stage, or marks the session done after shutdown.
func (s *Session) finishLoading() {
	if s.shutdownLoad || s.planIdx >= len(s.plan) {
		s.phase = PhaseDone
		s.curCluster = LoadingCluster
		return
	}
	p := s.plan[s.planIdx]
	s.planIdx++
	s.phase = PhaseExec
	s.curStage = p.stageType
	s.execRemaining = float64(p.duration)
	s.segmentIdx = 0
	s.segmentLen = float64(p.duration) / float64(len(p.clusterOrder))
	s.segmentLeft = s.segmentLen
	s.curCluster = p.clusterOrder[0]
}

// advanceSegment moves a multi-cluster stage to its next cluster segment.
func (s *Session) advanceSegment() {
	p := s.plan[s.planIdx-1]
	s.segmentIdx++
	if s.segmentIdx >= len(p.clusterOrder) {
		s.segmentIdx = len(p.clusterOrder) - 1 // hold the last segment
		s.segmentLeft = s.execRemaining
		return
	}
	s.curCluster = p.clusterOrder[s.segmentIdx]
	s.segmentLeft = s.segmentLen
}

// enterNextLoading transitions from a finished execution stage into loading.
func (s *Session) enterNextLoading() {
	s.phase = PhaseLoading
	s.curCluster = LoadingCluster
	s.spikeLeft = 0
	if s.planIdx >= len(s.plan) {
		s.shutdownLoad = true
		s.loadLeft = s.drawLoad(0.5)
	} else {
		s.loadLeft = s.drawLoad(1)
	}
	s.lastFPS = 0
}

// Elapsed returns the total virtual seconds the session has run.
func (s *Session) Elapsed() simclock.Seconds { return s.elapsed }

// ExecSeconds returns seconds spent in execution stages.
func (s *Session) ExecSeconds() simclock.Seconds { return s.execSeconds }

// LoadSeconds returns seconds spent in loading stages.
func (s *Session) LoadSeconds() simclock.Seconds { return s.loadSeconds }

// LoadExtended returns the extra loading seconds caused by throttled
// supply — the time the scheduler "stole" from this session.
func (s *Session) LoadExtended() float64 { return s.loadExtended }

// LastFPS returns the frame rate achieved in the most recent tick (0 while
// loading).
func (s *Session) LastFPS() float64 { return s.lastFPS }

// LastSatisfaction returns the fraction of the last tick's demand that was
// granted, in [0, 1].
func (s *Session) LastSatisfaction() float64 { return s.lastSat }

// AvgFPS returns the mean frame rate over all execution seconds so far.
func (s *Session) AvgFPS() float64 {
	if s.execSeconds == 0 {
		return 0
	}
	return s.fpsSum / float64(s.execSeconds)
}

// FPSRatio returns AvgFPS as a fraction of the game's best achievable frame
// rate — the Y axis of Fig. 13.
func (s *Session) FPSRatio() float64 { return s.AvgFPS() / s.Spec.EffectiveFPS() }

// GoodFPSFraction returns the fraction of execution seconds at or above the
// 30 FPS QoS floor.
func (s *Session) GoodFPSFraction() float64 {
	if s.execSeconds == 0 {
		return 1
	}
	return float64(s.goodFPS) / float64(s.execSeconds)
}

// FPSPercentile returns the p-th percentile (0-100) of per-second frame
// rates over execution time so far, at 4 FPS resolution. Low percentiles
// expose stutter that the mean hides.
func (s *Session) FPSPercentile(p float64) float64 {
	total := int(s.execSeconds)
	if total == 0 {
		return 0
	}
	target := int(p / 100 * float64(total))
	if target >= total {
		target = total - 1
	}
	cum := 0
	for b, n := range s.fpsHist {
		cum += n
		if cum > target {
			return float64(b) * 4
		}
	}
	return float64(fpsBuckets) * 4
}

// DegradedFraction returns the fraction of execution seconds with less than
// 95 % of demand satisfied; the paper's operators accept up to 5 % of total
// time degraded (Section IV-D).
func (s *Session) DegradedFraction() float64 {
	if s.execSeconds == 0 {
		return 0
	}
	return float64(s.degraded) / float64(s.execSeconds)
}
