package gamesim

// Counter-indexed demand noise.
//
// Per-second demand jitter used to be drawn from the session's sequential RNG,
// which coupled every second to every other: skipping one second's draw would
// shift every later draw (noise, spike decisions, loading durations alike).
// The bulk stepper needs the opposite property — evaluating or not evaluating
// a second's demand must be unobservable — so jitter is a pure function of
// (session noise seed, elapsed second, dimension). The sequential RNG keeps
// everything that is naturally event-shaped: plan realization, loading
// durations, spike onsets and parameters.
//
// The sample is a scaled Irwin–Hall sum of three uniforms: mean 0, variance 1,
// and — the property the bulk certificate leans on — hard-bounded to (-3, 3).
// A bounded tail makes base + 3·jitter a true componentwise envelope of every
// demand the session can present in a cluster, which is what lets a server
// prove "grants will equal demands for the next H seconds" without evaluating
// a single draw.

// noiseGamma is the splitmix64 increment (golden-ratio constant).
const noiseGamma uint64 = 0x9E3779B97F4A7C15

// noiseMix is the splitmix64 output mix: a bijective avalanche over 64 bits.
func noiseMix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// noiseUnit maps 64 hash bits to a uniform in [0, 1) with 53-bit resolution.
func noiseUnit(bits uint64) float64 {
	return float64(bits>>11) / (1 << 53)
}

// demandNoise returns the session's demand jitter for one (second, dimension)
// pair: a zero-mean, unit-variance sample strictly inside (-3, 3). It is
// stateless — any subset of seconds can be evaluated in any order.
func demandNoise(seed uint64, t int64, dim int) float64 {
	ctr := seed ^ noiseMix(uint64(t)+noiseGamma*uint64(dim+1))
	ctr += noiseGamma
	u1 := noiseUnit(noiseMix(ctr))
	ctr += noiseGamma
	u2 := noiseUnit(noiseMix(ctr))
	ctr += noiseGamma
	u3 := noiseUnit(noiseMix(ctr))
	return 2 * (u1 + u2 + u3 - 1.5)
}

// noiseBound is the strict bound on |demandNoise|: base demand plus
// noiseBound × jitter is a true worst-case envelope.
const noiseBound = 3.0
