// Package gamesim is the cloud-game substrate: generative stage-machine
// models that stand in for the real games of the paper's testbed (DOTA2,
// CSGO, Genshin Impact, Devil May Cry, Contra under GamingAnywhere).
//
// CoCG never looks inside a game — it only observes the per-5-second
// CPU/GPU/GPU-mem/RAM consumption vector. This package therefore reproduces
// exactly that observable structure (Section III, Observations 1-4):
//
//   - a game alternates loading stages (high CPU, near-zero GPU, 5-30 s) and
//     execution stages (scene-dependent consumption),
//   - each execution stage type is a combination of one or more frame
//     clusters (Fig. 4),
//   - stage order and duration depend on the player, with the strength of
//     that dependence set by the game's category (Fig. 7).
//
// gamesim is the bottom layer of the pipeline (gamesim → telemetry →
// profiler/cluster → predictor → scheduler → experiments) and holds no
// global state: GameSpec values are immutable after construction and safe to
// share across goroutines, while each Session owns a private RNG seeded at
// construction and must be confined to one goroutine. Concurrent simulations
// therefore create one Session per goroutine from a shared spec.
package gamesim

import (
	"fmt"

	"cocg/internal/resources"
	"cocg/internal/simclock"
)

// Category is the paper's Fig. 7 game taxonomy. It determines how training
// samples are selected (Section IV-B1) and how strongly the player perturbs
// stage order and duration.
type Category int

// The four quadrants of Fig. 7.
const (
	// Web games: simple stages, low user influence (e.g. Contra, Raiden).
	Web Category = iota
	// Mobile games: simple stages, high user influence (e.g. Genshin Impact).
	Mobile
	// Console games: complex stages, low user influence (e.g. Devil May Cry).
	Console
	// MMORPG covers MMORPG & MOBA: complex stages, high user influence
	// (e.g. DOTA2, World of Warcraft).
	MMORPG
)

// String returns the category name used in tables.
func (c Category) String() string {
	switch c {
	case Web:
		return "web"
	case Mobile:
		return "mobile"
	case Console:
		return "console"
	case MMORPG:
		return "mmorpg"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// UserInfluence returns the relative strength (0..1) with which players
// perturb stage durations and ordering for this category — the vertical axis
// of Fig. 7.
func (c Category) UserInfluence() float64 {
	switch c {
	case Web:
		return 0.05
	case Mobile:
		return 0.75
	case Console:
		return 0.15
	case MMORPG:
		return 0.9
	default:
		return 0.5
	}
}

// ClusterSpec is one frame cluster of a game: the resource centroid of a
// 5-second slice plus how noisy individual seconds are around it.
type ClusterSpec struct {
	Name   string
	Demand resources.Vector
	Jitter float64 // per-second Gaussian noise std dev, in percent points
}

// StageType describes one stage type of a game (Fig. 4): the set of frame
// clusters it is composed of and its nominal duration. Stage type 0 of every
// game is the loading stage.
type StageType struct {
	Name string
	// Clusters lists the frame-cluster indices that compose the stage. Most
	// execution stages have exactly one; the paper's "big secret realm with
	// three bosses" example has several, visited in player-dependent order.
	Clusters []int
	// MeanDur is the nominal stage length at full resource supply. For the
	// loading stage type this is ignored (loading length is drawn from the
	// game's LoadMin/LoadMax range).
	MeanDur simclock.Seconds
	// DurJitter is the baseline relative spread of the duration; the
	// effective spread is DurJitter scaled up by the category's user
	// influence.
	DurJitter float64
}

// LoadingType is the index of the loading stage type in every GameSpec.
const LoadingType = 0

// LoadingCluster is the index of the loading frame cluster in every GameSpec.
const LoadingCluster = 0

// Script is one of the automation scripts of Table I: a named nominal
// sequence of execution stage types.
type Script struct {
	Name string
	Desc string
	// Body is the nominal order of execution stage type indices. Loading
	// stages are implicit: one before each entry and a final shutdown load.
	Body []int
}

// GameSpec is the complete static description of one game.
type GameSpec struct {
	Name     string
	Category Category
	// Clusters holds the frame clusters; index 0 must be the loading
	// cluster (high CPU, near-zero GPU — Observation 3).
	Clusters []ClusterSpec
	// StageTypes holds the stage catalog; index 0 must be the loading stage.
	StageTypes []StageType
	Scripts    []Script
	// BaseFPS is the frame rate the game reaches with full resources and no
	// engine cap. FPSCap, when > 0, is the manufacturer frame lock (30 or 60
	// for Genshin Impact and Devil May Cry per Section V-C2).
	BaseFPS float64
	FPSCap  float64
	// LoadMin/LoadMax bound the loading stage duration at full CPU supply
	// (the paper observes 5-30 s).
	LoadMin, LoadMax simclock.Seconds
	// NominalLen is the manufacturer-advertised session length; the
	// regulator's "distinguish game length" strategy (Section IV-C2) keys
	// off it.
	NominalLen simclock.Seconds
	// SpikeRate is the per-second probability of a short resource burst that
	// is *not* a stage change — the "sudden event" of Fig. 9 period three
	// that exercises the predictor's rehearsal callback.
	SpikeRate float64
}

// EffectiveFPS returns the best frame rate the game can reach: BaseFPS
// limited by the engine cap.
func (g *GameSpec) EffectiveFPS() float64 {
	if g.FPSCap > 0 && g.FPSCap < g.BaseFPS {
		return g.FPSCap
	}
	return g.BaseFPS
}

// Peak returns the component-wise maximum demand over all clusters — the
// paper's peak consumption M used in Eq. 1 and by the VBP baseline.
func (g *GameSpec) Peak() resources.Vector {
	vs := make([]resources.Vector, len(g.Clusters))
	for i, c := range g.Clusters {
		vs[i] = c.Demand
	}
	return resources.PeakOf(vs)
}

// NumStageTypes returns the size of the stage catalog including loading.
func (g *GameSpec) NumStageTypes() int { return len(g.StageTypes) }

// Validate checks the structural invariants every GameSpec must satisfy.
func (g *GameSpec) Validate() error {
	if g.Name == "" {
		return fmt.Errorf("gamesim: unnamed game")
	}
	if len(g.Clusters) < 2 {
		return fmt.Errorf("gamesim: %s needs at least a loading and one execution cluster", g.Name)
	}
	if len(g.StageTypes) < 2 {
		return fmt.Errorf("gamesim: %s needs at least a loading and one execution stage type", g.Name)
	}
	if len(g.StageTypes[LoadingType].Clusters) != 1 || g.StageTypes[LoadingType].Clusters[0] != LoadingCluster {
		return fmt.Errorf("gamesim: %s stage type 0 must be the loading stage over cluster 0", g.Name)
	}
	load := g.Clusters[LoadingCluster].Demand
	if load[resources.GPU] > 15 {
		return fmt.Errorf("gamesim: %s loading cluster GPU %.1f too high; loading screens do not render", g.Name, load[resources.GPU])
	}
	for ti, st := range g.StageTypes {
		if len(st.Clusters) == 0 {
			return fmt.Errorf("gamesim: %s stage type %d has no clusters", g.Name, ti)
		}
		for _, c := range st.Clusters {
			if c < 0 || c >= len(g.Clusters) {
				return fmt.Errorf("gamesim: %s stage type %d references cluster %d of %d", g.Name, ti, c, len(g.Clusters))
			}
		}
		if ti != LoadingType && st.MeanDur <= 0 {
			return fmt.Errorf("gamesim: %s stage type %d has non-positive duration", g.Name, ti)
		}
	}
	if len(g.Scripts) == 0 {
		return fmt.Errorf("gamesim: %s has no scripts", g.Name)
	}
	for si, sc := range g.Scripts {
		if len(sc.Body) == 0 {
			return fmt.Errorf("gamesim: %s script %d is empty", g.Name, si)
		}
		for _, t := range sc.Body {
			if t <= LoadingType || t >= len(g.StageTypes) {
				return fmt.Errorf("gamesim: %s script %d references stage type %d", g.Name, si, t)
			}
		}
	}
	if g.LoadMin < 5*simclock.Second || g.LoadMax < g.LoadMin {
		return fmt.Errorf("gamesim: %s loading range [%d, %d] invalid (all observed loads are >= 5 s)", g.Name, g.LoadMin, g.LoadMax)
	}
	if g.BaseFPS <= 0 {
		return fmt.Errorf("gamesim: %s BaseFPS must be positive", g.Name)
	}
	if g.NominalLen <= 0 {
		return fmt.Errorf("gamesim: %s NominalLen must be positive", g.Name)
	}
	return nil
}

// ScriptStageTypeCount returns the number of distinct stage types a script
// visits, counting the loading stage — the "# of stage type" column of
// Table I.
func (g *GameSpec) ScriptStageTypeCount(script int) int {
	seen := map[int]bool{LoadingType: true}
	for _, t := range g.Scripts[script].Body {
		seen[t] = true
	}
	return len(seen)
}
