package gamesim

import (
	"encoding/json"
	"fmt"
	"io"

	"cocg/internal/resources"
	"cocg/internal/simclock"
)

// The JSON game-spec format lets downstream users describe their own games
// without writing Go: clusters, stage types, scripts, frame caps, loading
// ranges. Every field mirrors GameSpec; durations are in seconds.

// specFile is the on-disk form of a GameSpec.
type specFile struct {
	Name     string        `json:"name"`
	Category string        `json:"category"`
	Clusters []clusterFile `json:"clusters"`
	Stages   []stageFile   `json:"stages"`
	Scripts  []scriptFile  `json:"scripts"`
	BaseFPS  float64       `json:"base_fps"`
	FPSCap   float64       `json:"fps_cap,omitempty"`
	LoadMin  int64         `json:"load_min_sec"`
	LoadMax  int64         `json:"load_max_sec"`
	// NominalLenSec is the advertised session length.
	NominalLenSec int64   `json:"nominal_len_sec"`
	SpikeRate     float64 `json:"spike_rate,omitempty"`
}

type clusterFile struct {
	Name   string     `json:"name"`
	Demand [4]float64 `json:"demand"` // cpu, gpu, gpumem, mem (percent)
	Jitter float64    `json:"jitter"`
}

type stageFile struct {
	Name      string  `json:"name"`
	Clusters  []int   `json:"clusters"`
	MeanSec   int64   `json:"mean_sec,omitempty"`
	DurJitter float64 `json:"dur_jitter,omitempty"`
}

type scriptFile struct {
	Name string `json:"name"`
	Desc string `json:"desc,omitempty"`
	Body []int  `json:"body"`
}

// categoryNames maps the JSON category strings.
var categoryNames = map[string]Category{
	"web": Web, "mobile": Mobile, "console": Console, "mmorpg": MMORPG,
}

// LoadSpec reads and validates a game spec from JSON.
func LoadSpec(r io.Reader) (*GameSpec, error) {
	var f specFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("gamesim: parsing spec: %w", err)
	}
	cat, ok := categoryNames[f.Category]
	if !ok {
		return nil, fmt.Errorf("gamesim: unknown category %q (web, mobile, console, mmorpg)", f.Category)
	}
	spec := &GameSpec{
		Name:       f.Name,
		Category:   cat,
		BaseFPS:    f.BaseFPS,
		FPSCap:     f.FPSCap,
		LoadMin:    simclock.Seconds(f.LoadMin),
		LoadMax:    simclock.Seconds(f.LoadMax),
		NominalLen: simclock.Seconds(f.NominalLenSec),
		SpikeRate:  f.SpikeRate,
	}
	for _, c := range f.Clusters {
		spec.Clusters = append(spec.Clusters, ClusterSpec{
			Name:   c.Name,
			Demand: resources.Vector(c.Demand),
			Jitter: c.Jitter,
		})
	}
	for _, s := range f.Stages {
		spec.StageTypes = append(spec.StageTypes, StageType{
			Name:      s.Name,
			Clusters:  s.Clusters,
			MeanDur:   simclock.Seconds(s.MeanSec),
			DurJitter: s.DurJitter,
		})
	}
	for _, s := range f.Scripts {
		spec.Scripts = append(spec.Scripts, Script{Name: s.Name, Desc: s.Desc, Body: s.Body})
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// SaveSpec writes a game spec as JSON (the inverse of LoadSpec).
func SaveSpec(spec *GameSpec, w io.Writer) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	var catName string
	for name, c := range categoryNames {
		if c == spec.Category {
			catName = name
		}
	}
	f := specFile{
		Name:          spec.Name,
		Category:      catName,
		BaseFPS:       spec.BaseFPS,
		FPSCap:        spec.FPSCap,
		LoadMin:       int64(spec.LoadMin),
		LoadMax:       int64(spec.LoadMax),
		NominalLenSec: int64(spec.NominalLen),
		SpikeRate:     spec.SpikeRate,
	}
	for _, c := range spec.Clusters {
		f.Clusters = append(f.Clusters, clusterFile{Name: c.Name, Demand: c.Demand, Jitter: c.Jitter})
	}
	for _, s := range spec.StageTypes {
		f.Stages = append(f.Stages, stageFile{
			Name: s.Name, Clusters: s.Clusters,
			MeanSec: int64(s.MeanDur), DurJitter: s.DurJitter,
		})
	}
	for _, s := range spec.Scripts {
		f.Scripts = append(f.Scripts, scriptFile{Name: s.Name, Desc: s.Desc, Body: s.Body})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}
