package gamesim

import (
	"strings"
	"testing"

	"cocg/internal/resources"
	"cocg/internal/simclock"
)

func TestAllGamesValidate(t *testing.T) {
	for _, g := range AllGames() {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestTableIStageTypeCounts(t *testing.T) {
	// The "# of stage type" column of Table I.
	want := map[string][]int{
		"DOTA2":          {3, 3},
		"CSGO":           {4, 3},
		"Devil May Cry":  {2, 4, 6},
		"Genshin Impact": {5, 5, 5},
		"Contra":         {2, 2, 2},
	}
	for _, g := range AllGames() {
		counts := want[g.Name]
		if len(g.Scripts) != len(counts) {
			t.Fatalf("%s has %d scripts, want %d", g.Name, len(g.Scripts), len(counts))
		}
		for si, wantN := range counts {
			if got := g.ScriptStageTypeCount(si); got != wantN {
				t.Errorf("%s %s stage types = %d, want %d", g.Name, g.Scripts[si].Name, got, wantN)
			}
		}
	}
}

func TestFig14ClusterCounts(t *testing.T) {
	// The chosen K values of Fig. 14 (Section V-D1).
	want := map[string]int{
		"Contra": 2, "CSGO": 4, "Genshin Impact": 4, "DOTA2": 5, "Devil May Cry": 6,
	}
	for _, g := range AllGames() {
		if got := len(g.Clusters); got != want[g.Name] {
			t.Errorf("%s clusters = %d, want %d", g.Name, got, want[g.Name])
		}
	}
}

func TestCategories(t *testing.T) {
	want := map[string]Category{
		"DOTA2": MMORPG, "CSGO": MMORPG, "Genshin Impact": Mobile,
		"Devil May Cry": Console, "Contra": Web,
	}
	for _, g := range AllGames() {
		if g.Category != want[g.Name] {
			t.Errorf("%s category = %v, want %v", g.Name, g.Category, want[g.Name])
		}
	}
}

func TestCategoryStringsAndInfluence(t *testing.T) {
	for _, c := range []Category{Web, Mobile, Console, MMORPG} {
		if strings.HasPrefix(c.String(), "category(") {
			t.Errorf("category %d has no name", c)
		}
		ui := c.UserInfluence()
		if ui < 0 || ui > 1 {
			t.Errorf("%v UserInfluence = %v out of range", c, ui)
		}
	}
	// Fig. 7 vertical ordering: user influence higher for Mobile/MMORPG.
	if !(Mobile.UserInfluence() > Web.UserInfluence()) ||
		!(MMORPG.UserInfluence() > Console.UserInfluence()) {
		t.Error("Fig. 7 user-influence ordering violated")
	}
	if got := Category(42).String(); got != "category(42)" {
		t.Errorf("unknown category string = %q", got)
	}
}

func TestFrameCaps(t *testing.T) {
	// Section V-C2: Genshin and DMC are engine-locked; CSGO/DOTA2 are not.
	capped := map[string]bool{"Genshin Impact": true, "Devil May Cry": true}
	for _, g := range AllGames() {
		if capped[g.Name] && g.FPSCap == 0 {
			t.Errorf("%s should have an FPS cap", g.Name)
		}
		if !capped[g.Name] && g.Name != "Contra" && g.FPSCap != 0 {
			t.Errorf("%s should be uncapped", g.Name)
		}
		if g.EffectiveFPS() <= 0 {
			t.Errorf("%s EffectiveFPS = %v", g.Name, g.EffectiveFPS())
		}
	}
	if got := CSGO().EffectiveFPS(); got != 200 {
		t.Errorf("CSGO EffectiveFPS = %v", got)
	}
	if got := GenshinImpact().EffectiveFPS(); got != 60 {
		t.Errorf("Genshin EffectiveFPS = %v", got)
	}
}

func TestPeak(t *testing.T) {
	g := GenshinImpact()
	p := g.Peak()
	// Sustained battle demand is 70 %; with transient bursts on top the
	// granted peak approaches Fig. 9's 78 %.
	if p[resources.GPU] != 70 {
		t.Errorf("Genshin peak GPU = %v, want 70", p[resources.GPU])
	}
	for _, c := range g.Clusters {
		if !c.Demand.Fits(p) {
			t.Errorf("cluster %s exceeds peak", c.Name)
		}
	}
}

func TestLoadingClusterShape(t *testing.T) {
	// Observation 3: loading = highest CPU of low-GPU clusters, near-zero GPU.
	for _, g := range AllGames() {
		load := g.Clusters[LoadingCluster].Demand
		if load[resources.GPU] > 10 {
			t.Errorf("%s loading GPU = %v, want near zero", g.Name, load[resources.GPU])
		}
		if load[resources.CPU] <= load[resources.GPU] {
			t.Errorf("%s loading should be CPU-dominated", g.Name)
		}
	}
}

func TestLoadingRanges(t *testing.T) {
	// Section V-C1: loading times are 5-30 s.
	for _, g := range AllGames() {
		if g.LoadMin < 5*simclock.Second || g.LoadMax > 30*simclock.Second {
			t.Errorf("%s load range [%d, %d] outside the paper's 5-30 s", g.Name, g.LoadMin, g.LoadMax)
		}
	}
}

func TestGameByName(t *testing.T) {
	g, err := GameByName("CSGO")
	if err != nil || g.Name != "CSGO" {
		t.Errorf("GameByName(CSGO) = %v, %v", g, err)
	}
	if _, err := GameByName("Tetris"); err == nil {
		t.Error("unknown game did not error")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*GameSpec)
	}{
		{"unnamed", func(g *GameSpec) { g.Name = "" }},
		{"no clusters", func(g *GameSpec) { g.Clusters = g.Clusters[:1] }},
		{"no stage types", func(g *GameSpec) { g.StageTypes = g.StageTypes[:1] }},
		{"loading renders", func(g *GameSpec) { g.Clusters[0].Demand[resources.GPU] = 50 }},
		{"bad cluster ref", func(g *GameSpec) { g.StageTypes[1].Clusters = []int{99} }},
		{"no scripts", func(g *GameSpec) { g.Scripts = nil }},
		{"empty script", func(g *GameSpec) { g.Scripts[0].Body = nil }},
		{"script refs loading", func(g *GameSpec) { g.Scripts[0].Body = []int{0} }},
		{"load too short", func(g *GameSpec) { g.LoadMin = 1 }},
		{"load range inverted", func(g *GameSpec) { g.LoadMax = g.LoadMin - 1 }},
		{"zero fps", func(g *GameSpec) { g.BaseFPS = 0 }},
		{"zero nominal", func(g *GameSpec) { g.NominalLen = 0 }},
		{"zero stage dur", func(g *GameSpec) { g.StageTypes[1].MeanDur = 0 }},
		{"stage no clusters", func(g *GameSpec) { g.StageTypes[1].Clusters = nil }},
	}
	for _, m := range mutations {
		g := DOTA2()
		m.mut(g)
		if err := g.Validate(); err == nil {
			t.Errorf("mutation %q passed validation", m.name)
		}
	}
}
